"""Quickstart: learn a model of a TCP implementation in ~20 lines.

Reproduces the paper's section 6.1 headline: the Linux-like TCP stack
learns to a 6-state, 42-transition Mealy machine, whose handshake fragment
is exactly Fig. 3(b).

Run:  python examples/quickstart.py
"""

from repro import Prognosis
from repro.adapter.tcp_adapter import TCPAdapterSUL
from repro.analysis import transition_table
from repro.core.alphabet import parse_tcp_symbol


def main() -> None:
    # The SUL: a simulated Linux-like TCP server plus the instrumented
    # reference client acting as the concretization oracle.  The context
    # manager releases the SUL's resources when learning is done.
    with Prognosis(TCPAdapterSUL(seed=3), name="tcp-linux") as prognosis:
        report = prognosis.learn()
        print(report.summary())
        print()
        print(transition_table(report.model))
        print()

        # Drive the learned model through the 3-way handshake (Fig. 3b).
        syn = parse_tcp_symbol("SYN(?,?,0)")
        ack = parse_tcp_symbol("ACK(?,?,0)")
        outputs = report.model.run((syn, ack))
        print(f"{syn} -> {outputs[0]}")
        print(f"{ack} -> {outputs[1]}")

        # Check a safety property: a reset listener never SYN+ACKs.
        violation = prognosis.check(
            report.model,
            "G ((out ~ RST) -> X (out != ACK+SYN(?,?,0)))",
            depth=6,
        )
        print(f"safety property: {'violated: ' + violation.render() if violation else 'holds'}")


if __name__ == "__main__":
    main()

"""Learn and compare QUIC implementation models (paper section 6.2.2).

Learns the Google-like and Quiche-like servers (12 and 8 states), prints
their differences (design decisions, not necessarily bugs), and the
trace-space reduction statistic: ~330M raw traces of length <= 10 versus
the ~1k traces the learned models make it sufficient to check.

Run:  python examples/learn_quic_models.py
"""

from repro.analysis import side_by_side, summary
from repro.experiments import learn_quic, quic_trace_reduction
from repro.framework import Prognosis


def main() -> None:
    print("learning the Google-like implementation ...")
    with learn_quic("google") as google:
        print(" ", google.report.summary())

    print("learning the Quiche-like implementation ...")
    with learn_quic("quiche") as quiche:
        print(" ", quiche.report.summary())

    print()
    diff = Prognosis.compare(google.model, quiche.model, max_witnesses=3)
    print(diff.render())

    print()
    for experiment in (google, quiche):
        print(quic_trace_reduction(experiment).render())

    print()
    print("first divergence, side by side:")
    print(side_by_side(google.model, quiche.model).splitlines()[0])

    # Export appendix-style DOT renderings next to this script.
    for experiment, filename in ((google, "google.dot"), (quiche, "quiche.dot")):
        with open(filename, "w") as handle:
            handle.write(experiment.model.to_dot())
        print(f"wrote {filename} ({summary(experiment.model)})")


if __name__ == "__main__":
    main()

"""Synthesize register machines from learned models (paper section 4.3).

Recovers the Fig. 3(c) register logic of the TCP handshake -- the server's
acknowledgement number is the client's sequence number plus one -- purely
from the concrete traces cached in the Oracle Table while learning, using
the finite-domain constraint solver (the Z3 stand-in).

Run:  python examples/synthesize_registers.py
"""

from repro.experiments import learn_tcp_handshake, synthesize_handshake_registers


def main() -> None:
    print("learning the TCP handshake fragment ...")
    with learn_tcp_handshake() as experiment:
        print(" ", experiment.report.summary())
        print(f"  oracle table: {len(experiment.prognosis.sul.oracle_table)} traces")

        print("synthesizing register terms over (sn, an) ...")
        result = synthesize_handshake_registers(experiment)
    if result is None:
        raise SystemExit("synthesis found no consistent register machine")

    print(f"  search space: {result.problem.search_space():,} assignments")
    print(f"  solver branches: {result.stats.branches}")
    print("  synthesized output terms:")
    for (state, symbol), term in sorted(
        result.output_terms("an").items(), key=lambda kv: str(kv[0])
    ):
        print(f"    at ({state}, {symbol}): an = {term}")
    print()
    print("extended machine (DOT):")
    print(result.machine.to_dot())


if __name__ == "__main__":
    main()

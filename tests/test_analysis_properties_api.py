"""Tests for the unified property-checking API.

Covers the four property kinds, verdict semantics, ddmin witness
minimization against the model, JSON serialization, batch fan-out, the
suite registry, and the no-orphaned-frameworks dedup gate.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.property_api import (
    Property,
    PropertyError,
    Verdict,
    check_model_property,
    check_properties,
    check_properties_batch,
    formula_properties,
    resolve_properties,
)
from repro.core.alphabet import parse_tcp_symbol
from repro.registry import (
    PROPERTY_REGISTRY,
    RegistryError,
    register_properties,
    resolve_property_suite,
)

SYN = parse_tcp_symbol("SYN(?,?,0)")
ACK = parse_tcp_symbol("ACK(?,?,0)")


class TestPropertyConstruction:
    def test_kind_payload_pairing_enforced(self):
        with pytest.raises(PropertyError):
            Property(name="p", description="", kind="ltlf")  # no formula
        with pytest.raises(PropertyError):
            Property(name="p", description="", kind="nope", formula="x")

    def test_constructors_set_kind(self):
        assert Property.ltlf("p", "G (out == NIL)").kind == "ltlf"
        assert Property.trace("p", lambda t: True).kind == "trace"
        assert Property.oracle("p", lambda table: []).kind == "oracle"
        assert Property.register("p", lambda s, p: True).kind == "register"

    def test_probe_tag(self):
        probe = Property.trace("p", lambda t: True, tags=("probe",))
        assert probe.is_probe
        assert not Property.trace("p", lambda t: True).is_probe


class TestVerdicts:
    def test_ltlf_holds(self, toy_machine):
        prop = Property.ltlf("ack-silent", "G (in == ACK(?,?,0) -> out == NIL)")
        verdict = check_model_property(toy_machine, prop, depth=4)
        assert verdict.verdict == Verdict.HOLDS
        assert verdict.holds

    def test_ltlf_violation_carries_minimized_witness(self, toy_machine):
        prop = Property.ltlf("always-silent", "G (out == NIL)")
        verdict = check_model_property(toy_machine, prop, depth=4)
        assert verdict.verdict == Verdict.VIOLATED
        assert verdict.minimized
        # 1-minimal: the single SYN that draws SYN+ACK.
        assert len(verdict.witness) == 1
        assert "SYN" in verdict.witness.render()

    def test_ltlf_parse_error_is_error_verdict(self, toy_machine):
        prop = Property.ltlf("broken", "G (out ===== NIL)")
        verdict = check_model_property(toy_machine, prop, depth=3)
        assert verdict.verdict == Verdict.ERROR
        assert "parse error" in verdict.detail

    def test_trace_predicate_violation_minimized(self, toy_machine):
        # Violated by any trace containing an RST output; the minimal
        # model witness is SYN SYN (open the lock, then re-SYN).
        prop = Property.trace(
            "never-rst", lambda t: all("RST" not in str(o) for o in t.outputs)
        )
        verdict = check_model_property(toy_machine, prop, depth=4)
        assert verdict.verdict == Verdict.VIOLATED
        assert verdict.minimized
        assert len(verdict.witness) == 2

    def test_crashing_predicate_is_error_verdict(self, toy_machine):
        def boom(trace):
            raise RuntimeError("bad predicate")

        verdict = check_model_property(
            toy_machine, Property.trace("boom", boom), depth=3
        )
        assert verdict.verdict == Verdict.ERROR
        assert "RuntimeError" in verdict.detail

    def test_oracle_kind_skipped_without_table(self, toy_machine):
        prop = Property.oracle("ids", lambda table: [])
        verdict = check_model_property(toy_machine, prop, depth=3)
        assert verdict.verdict == Verdict.SKIPPED

    def test_register_kind_skipped_without_machine(self, toy_machine):
        prop = Property.register("pn", lambda steps, predictions: True)
        verdict = check_model_property(toy_machine, prop, depth=3)
        assert verdict.verdict == Verdict.SKIPPED

    def test_register_kind_checks_concrete_traces(self, toy_machine):
        from repro.core.extended import ConcreteStep
        from repro.synth import synthesize
        from repro.core.alphabet import Alphabet
        from repro.core.mealy import mealy_from_table

        synack = parse_tcp_symbol("ACK+SYN(?,?,0)")
        skeleton = mealy_from_table(
            "s0",
            Alphabet.of([SYN]),
            [("s0", SYN, synack, "s0")],
            "reg-skel",
        )
        traces = [
            [
                ConcreteStep(SYN, synack, {"pn": 0}, {"pn": 7}),
                ConcreteStep(SYN, synack, {"pn": 1}, {"pn": 7}),
            ]
        ]
        machine = synthesize(skeleton, traces, register_names=("r",)).machine

        def increasing(steps, predictions):
            values = [p["pn"] for p in predictions if "pn" in p]
            return values == sorted(set(values))

        prop = Property.register("pn-increasing", increasing)
        verdict = check_model_property(
            toy_machine, prop, extended=machine, concrete_traces=traces
        )
        assert verdict.verdict == Verdict.VIOLATED
        assert verdict.witness is not None


class TestReport:
    def suite(self):
        return (
            Property.ltlf("holds", "G (in == ACK(?,?,0) -> out == NIL)"),
            Property.ltlf("fails", "G (out == NIL)"),
            Property.ltlf("probe-fails", "G (out != RST(?,?,0))", tags=("probe",)),
            Property.oracle("skipped", lambda table: []),
        )

    def test_report_counts_and_ok(self, toy_machine):
        report = check_properties(toy_machine, self.suite(), depth=4)
        counts = report.counts()
        assert counts == {"holds": 1, "violated": 2, "skipped": 1, "error": 0}
        assert not report.ok  # the non-probe violation fails the report
        assert report.verdict("fails").violated
        with pytest.raises(KeyError):
            report.verdict("absent")

    def test_probe_violations_do_not_fail_ok(self, toy_machine):
        probe_only = (
            Property.ltlf("holds", "G (in == ACK(?,?,0) -> out == NIL)"),
            Property.ltlf("probe-fails", "G (out != RST(?,?,0))", tags=("probe",)),
        )
        report = check_properties(toy_machine, probe_only, depth=4)
        assert report.ok
        assert "DIFFERS (probe)" in report.render()

    def test_render_and_summary(self, toy_machine):
        report = check_properties(toy_machine, self.suite(), depth=4)
        rendered = report.render()
        assert "VIOLATED" in rendered
        assert "witness:" in rendered
        assert "holds" in report.summary()

    def test_to_dict_is_jsonable(self, toy_machine):
        report = check_properties(toy_machine, self.suite(), depth=4)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["depth"] == 4
        assert data["ok"] is False
        fails = next(v for v in data["verdicts"] if v["property"] == "fails")
        assert fails["verdict"] == "violated"
        assert fails["witness"]["inputs"] == ["SYN(?,?,0)"]

    def test_batch_matches_serial(self, toy_machine, redundant_machine):
        jobs = [
            (toy_machine, self.suite()),
            (redundant_machine, self.suite()),
        ]
        serial = check_properties_batch(jobs, workers=1, depth=4)
        pooled = check_properties_batch(jobs, workers=4, depth=4)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in pooled]


class TestSuiteRegistry:
    def test_builtin_suites_registered(self):
        from repro.registry import load_builtins

        load_builtins()
        for key in ("tcp", "quic", "http2", "toy"):
            assert key in PROPERTY_REGISTRY

    def test_stem_resolution(self):
        exact = resolve_property_suite("quic")
        by_stem = resolve_property_suite("quic-google")
        assert exact is not None and by_stem is not None
        assert [p.name for p in exact] == [p.name for p in by_stem]
        assert resolve_property_suite("no-such-protocol") is None

    def test_exact_key_wins_over_stem(self):
        @register_properties("tcp-special")
        def special():
            return (Property.trace("only-here", lambda t: True),)

        try:
            suite = resolve_property_suite("tcp-special")
            assert [p.name for p in suite] == ["only-here"]
        finally:
            PROPERTY_REGISTRY.unregister("tcp-special")

    def test_resolve_properties_filters_probes_and_adds_formulas(self):
        with_probes = resolve_properties("quic-google", include_probes=True)
        without = resolve_properties("quic-google")
        assert {p.name for p in with_probes} - {p.name for p in without} == {
            "single-packet-close"
        }
        combined = resolve_properties(
            "toy", formulas=["G (out == NIL)"]
        )
        assert combined[-1].kind == "ltlf"
        assert combined[-1].formula == "G (out == NIL)"

    def test_resolve_properties_unknown_suite_raises(self):
        with pytest.raises(RegistryError):
            resolve_properties("toy", suite="no-such-suite")

    def test_formula_properties_named_after_text(self):
        props = formula_properties(["G (out == NIL)"])
        assert props[0].name == "formula: G (out == NIL)"


class TestNoOrphanedFrameworks:
    def test_single_property_framework_definition_site(self):
        """The migration's dedup gate: the old per-protocol
        ``PropertyResult``/``render_results`` frameworks must not leave
        copies behind -- reports exist only in property_api."""
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in src.rglob("*.py"):
            text = path.read_text()
            if "class PropertyResult" in text or "def render_results" in text:
                offenders.append(str(path))
        assert offenders == []

    def test_report_class_defined_once(self):
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        sites = [
            str(path)
            for path in src.rglob("*.py")
            if "class PropertyReport" in path.read_text()
        ]
        assert len(sites) == 1
        assert sites[0].endswith("property_api.py")

"""Tests for the TCP property suite (paper section 6.1 behaviours).

The headline check: ``challenge-ack-rate-limited`` HOLDS on the
Linux-like stack and is VIOLATED on the ``tcp-no-challenge-ack``
ablation, with a minimized witness -- the RFC 5961 rate limiter made
observable at the model level.
"""

import pytest

from repro.analysis.tcp_properties import (
    TCP_PROPERTIES,
    challenge_ack_is_rate_limited,
    data_needs_handshake,
    rst_is_terminal,
)
from repro.analysis.property_api import Verdict, check_properties
from repro.core.alphabet import parse_tcp_symbol
from repro.core.trace import IOTrace
from repro.registry import resolve_property_suite

SYN = parse_tcp_symbol("SYN(?,?,0)")
ACK = parse_tcp_symbol("ACK(?,?,0)")
SYNACK = parse_tcp_symbol("ACK+SYN(?,?,0)")
DATA = parse_tcp_symbol("ACK+PSH(?,?,1)")
FINACK = parse_tcp_symbol("FIN+ACK(?,?,0)")
RST = parse_tcp_symbol("RST(?,?,0)")
NIL = parse_tcp_symbol("NIL")


def trace(*pairs):
    inputs, outputs = zip(*pairs) if pairs else ((), ())
    return IOTrace(tuple(inputs), tuple(outputs))


class TestPredicates:
    def test_rate_limited_second_syn_silent(self):
        good = trace((SYN, SYNACK), (ACK, NIL), (SYN, ACK), (SYN, NIL))
        assert challenge_ack_is_rate_limited(good)

    def test_unlimited_challenge_acks_violate(self):
        bad = trace((SYN, SYNACK), (ACK, NIL), (SYN, ACK), (SYN, ACK))
        assert not challenge_ack_is_rate_limited(bad)

    def test_rate_limit_not_required_after_fin(self):
        closing = trace(
            (SYN, SYNACK), (FINACK, FINACK), (SYN, ACK), (SYN, ACK)
        )
        assert challenge_ack_is_rate_limited(closing)

    def test_rst_terminal_after_handshake(self):
        dead = trace((SYN, SYNACK), (RST, NIL), (SYN, NIL))
        assert rst_is_terminal(dead)
        undead = trace((SYN, SYNACK), (RST, NIL), (SYN, SYNACK))
        assert not rst_is_terminal(undead)

    def test_rst_before_handshake_out_of_scope(self):
        listener = trace((RST, NIL), (SYN, SYNACK))
        assert rst_is_terminal(listener)

    def test_data_before_handshake_never_acked(self):
        reset = trace((DATA, RST))
        assert data_needs_handshake(reset)
        acked = trace((DATA, ACK))
        assert not data_needs_handshake(acked)
        established = trace((SYN, SYNACK), (DATA, ACK))
        assert data_needs_handshake(established)


class TestSuiteDefinition:
    def test_registered_for_the_whole_family(self):
        for target in ("tcp", "tcp-handshake", "tcp-no-challenge-ack"):
            assert resolve_property_suite(target) == TCP_PROPERTIES


@pytest.fixture(scope="module")
def tcp_models():
    """The Linux-like model and the no-rate-limit ablation, learned once."""
    from repro.experiments.base import Experiment
    from repro.spec import ExperimentSpec

    models = {}
    for target in ("tcp", "tcp-no-challenge-ack"):
        with Experiment.run(ExperimentSpec(target=target, name=target)) as exp:
            models[target] = exp.model
    return models


class TestSuiteOnLearnedModels:
    def test_linux_stack_satisfies_the_suite(self, tcp_models):
        report = check_properties(tcp_models["tcp"], TCP_PROPERTIES, depth=5)
        assert report.ok, report.render()
        assert all(v.holds for v in report)

    def test_ablation_violates_rate_limit_with_witness(self, tcp_models):
        report = check_properties(
            tcp_models["tcp-no-challenge-ack"], TCP_PROPERTIES, depth=5
        )
        verdict = report.verdict("challenge-ack-rate-limited")
        assert verdict.verdict == Verdict.VIOLATED
        assert verdict.minimized
        # Minimal repro: open, establish, then two back-to-back SYNs.
        assert len(verdict.witness) == 4
        assert str(verdict.witness.outputs[-1]) == str(
            verdict.witness.outputs[-2]
        ) == "ACK(?,?,0)"
        # The other conformance properties are untouched by the ablation.
        assert report.verdict("rst-terminal").holds
        assert report.verdict("data-needs-handshake").holds

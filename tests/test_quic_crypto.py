"""Unit and property tests for the simulated QUIC key schedule and AEAD."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic.crypto import (
    CryptoError,
    address_validation_token,
    application_keys,
    handshake_keys,
    initial_keys,
    retry_integrity_tag,
    stateless_reset_token,
)


class TestKeySchedule:
    def test_initial_keys_deterministic_from_dcid(self):
        a = initial_keys(b"\x01" * 8)
        b = initial_keys(b"\x01" * 8)
        assert a.client.key == b.client.key
        assert a.server.key == b.server.key

    def test_initial_keys_differ_per_dcid(self):
        assert initial_keys(b"\x01" * 8).client.key != initial_keys(b"\x02" * 8).client.key

    def test_directions_differ(self):
        keys = initial_keys(b"\x01" * 8)
        assert keys.client.key != keys.server.key

    def test_handshake_requires_both_randoms(self):
        a = handshake_keys(b"c" * 32, b"s" * 32)
        b = handshake_keys(b"c" * 32, b"x" * 32)
        assert a.client.key != b.client.key

    def test_levels_are_independent(self):
        hs = handshake_keys(b"c" * 32, b"s" * 32)
        app = application_keys(b"c" * 32, b"s" * 32)
        assert hs.client.key != app.client.key


class TestSealOpen:
    def test_roundtrip(self):
        keys = initial_keys(b"\x07" * 8)
        sealed = keys.client.seal(3, b"header", b"payload")
        assert keys.client.open(3, b"header", sealed) == b"payload"

    def test_wrong_key_fails(self):
        a = initial_keys(b"\x07" * 8)
        b = initial_keys(b"\x08" * 8)
        sealed = a.client.seal(3, b"h", b"p")
        with pytest.raises(CryptoError):
            b.client.open(3, b"h", sealed)

    def test_wrong_direction_fails(self):
        keys = initial_keys(b"\x07" * 8)
        sealed = keys.client.seal(3, b"h", b"p")
        with pytest.raises(CryptoError):
            keys.server.open(3, b"h", sealed)

    def test_wrong_pn_fails(self):
        keys = initial_keys(b"\x07" * 8)
        sealed = keys.client.seal(3, b"h", b"p")
        with pytest.raises(CryptoError):
            keys.client.open(4, b"h", sealed)

    def test_header_tamper_fails(self):
        keys = initial_keys(b"\x07" * 8)
        sealed = keys.client.seal(3, b"h", b"p")
        with pytest.raises(CryptoError):
            keys.client.open(3, b"H", sealed)

    def test_ciphertext_tamper_fails(self):
        keys = initial_keys(b"\x07" * 8)
        sealed = bytearray(keys.client.seal(3, b"h", b"payload"))
        sealed[0] ^= 0xFF
        with pytest.raises(CryptoError):
            keys.client.open(3, b"h", bytes(sealed))

    def test_too_short_rejected(self):
        keys = initial_keys(b"\x07" * 8)
        with pytest.raises(CryptoError):
            keys.client.open(0, b"h", b"short")


class TestTokens:
    def test_reset_token_deterministic(self):
        assert stateless_reset_token(b"cid") == stateless_reset_token(b"cid")
        assert len(stateless_reset_token(b"cid")) == 16

    def test_address_token_binds_port(self):
        # The heart of Issue 3: a token from a different port fails.
        a = address_validation_token("client", 40400, b"")
        b = address_validation_token("client", 55555, b"")
        assert a != b

    def test_retry_tag_binds_dcid(self):
        assert retry_integrity_tag(b"a", b"pseudo") != retry_integrity_tag(b"b", b"pseudo")


@given(
    payload=st.binary(max_size=256),
    header=st.binary(max_size=32),
    pn=st.integers(0, 2**30),
)
@settings(max_examples=150, deadline=None)
def test_seal_open_roundtrip_property(payload, header, pn):
    keys = application_keys(b"c" * 32, b"s" * 32)
    sealed = keys.server.seal(pn, header, payload)
    assert keys.server.open(pn, header, sealed) == payload
    assert len(sealed) == len(payload) + 16

"""The pooled pipeline must learn byte-identical models to the serial one.

Acceptance test for the batch-first refactor: with ``workers=4`` the TCP
and QUIC experiment SULs must produce the same states, the same
transitions, and the same counterexample sequence as the serial run --
parallelism may only change wall-clock, never what is learned.
"""

from repro.adapter.mealy_sul import MealySUL
from repro.experiments.quic_experiments import learn_quic
from repro.experiments.tcp_experiments import learn_tcp_full, learn_tcp_handshake
from repro.framework import Prognosis
from repro.learn.equivalence import ChainedEquivalenceOracle


class TestPooledEqualsSerial:
    def test_tcp_full(self, assert_identical_models):
        serial = learn_tcp_full(workers=1)
        pooled = learn_tcp_full(workers=4)
        assert_identical_models(serial.model, pooled.model)
        assert serial.report.counterexamples == pooled.report.counterexamples
        assert serial.report.sul_queries == pooled.report.sul_queries
        assert pooled.report.workers == 4

    def test_tcp_handshake(self, assert_identical_models):
        serial = learn_tcp_handshake(workers=1)
        pooled = learn_tcp_handshake(workers=4)
        assert_identical_models(serial.model, pooled.model)
        assert serial.report.counterexamples == pooled.report.counterexamples

    def test_quic_quiche(self, assert_identical_models):
        serial = learn_quic("quiche", workers=1)
        pooled = learn_quic("quiche", workers=4)
        assert_identical_models(serial.model, pooled.model)
        assert serial.report.counterexamples == pooled.report.counterexamples
        assert serial.report.sul_queries == pooled.report.sul_queries

    def test_toy_machine_all_learners(self, toy_machine, assert_identical_models):
        for learner in ("ttt", "lstar"):
            serial = Prognosis(
                sul_factory=lambda: MealySUL(toy_machine),
                workers=1,
                learner=learner,
            ).learn()
            pooled = Prognosis(
                sul_factory=lambda: MealySUL(toy_machine),
                workers=4,
                learner=learner,
            ).learn()
            assert_identical_models(serial.model, pooled.model)
            assert serial.counterexamples == pooled.counterexamples


class TestReportPlumbing:
    def test_eq_attribution_single_oracle(self, toy_machine):
        report = Prognosis(MealySUL(toy_machine)).learn()
        assert "wmethod" in report.eq_attribution
        stats = report.eq_attribution["wmethod"]
        assert stats["words_submitted"] > 0
        assert stats["counterexamples_found"] == len(report.counterexamples)

    def test_eq_attribution_chained(self, toy_machine):
        prognosis = Prognosis(MealySUL(toy_machine), equivalence="random+wmethod")
        report = prognosis.learn()
        assert set(report.eq_attribution) == {"random", "wmethod"}
        assert isinstance(prognosis.equivalence_oracle, ChainedEquivalenceOracle)
        total_found = sum(
            stats["counterexamples_found"]
            for stats in report.eq_attribution.values()
        )
        assert total_found == len(report.counterexamples)
        # Every round submits words to the first oracle in the chain.
        assert report.eq_attribution["random"]["words_submitted"] > 0

    def test_last_found_by_names_the_finder(self, toy_machine):
        prognosis = Prognosis(MealySUL(toy_machine), equivalence="random+wmethod")
        report = prognosis.learn()
        chained = prognosis.equivalence_oracle
        if report.counterexamples:
            assert chained.last_found_by in {"random", "wmethod"}

    def test_prefix_collapse_reported(self):
        report = learn_tcp_full(workers=1).report
        assert report.prefix_collapsed > 0

    def test_workers_require_factory(self, toy_machine):
        import pytest

        with pytest.raises(ValueError):
            Prognosis(MealySUL(toy_machine), workers=4)
        with pytest.raises(ValueError):
            Prognosis()

"""Cross-process store concurrency: WAL writers sharing one sqlite file.

Two worker processes learn the same spec against one store file at the
same time; the store must come out consistent (loadable, no conflicting
rows) and a warm re-learn through it must match a store-less serial run
byte-for-byte.
"""

import json
import multiprocessing

import pytest

from repro.campaign import run_spec
from repro.spec import ExecutorSpec, ExperimentSpec
from repro.store import QueryStore


def _learn_into_store(args):
    """Worker-process entry point: one store-backed learning run."""
    target, store_path = args
    from repro.campaign import run_spec
    from repro.spec import ExperimentSpec

    result = run_spec(
        ExperimentSpec(target=target, name=target), store=store_path
    )
    if not result.ok:
        return result.error
    return json.dumps(result.model.to_dict(), sort_keys=True)


@pytest.fixture
def mp_context():
    return multiprocessing.get_context("fork")


class TestConcurrentWriters:
    def test_two_processes_share_one_store(self, tmp_path, mp_context):
        store = tmp_path / "store.sqlite"
        spec = ExperimentSpec(target="tcp-handshake", name="tcp-handshake")
        serial = run_spec(spec)
        assert serial.ok, serial.error
        expected = json.dumps(serial.model.to_dict(), sort_keys=True)

        with mp_context.Pool(2) as pool:
            learned = pool.map(
                _learn_into_store,
                [("tcp-handshake", str(store))] * 2,
            )
        # Both concurrent writers learned the same model...
        assert learned == [expected, expected]

        # ...and left a consistent store behind: it loads without raising
        # and a warm re-learn through it is byte-identical and free.
        with QueryStore(store) as qs:
            cache = qs.load(spec.sul_fingerprint())
            assert cache.entries > 0
        warm = run_spec(spec, store=store)
        assert warm.ok, warm.error
        assert json.dumps(warm.model.to_dict(), sort_keys=True) == expected
        assert warm.report.sul_resets == 0
        assert warm.report.store_hit_rate >= 0.9

    def test_store_composes_with_process_executor(self, tmp_path):
        """The spec's own process-pool workers and the store middleware
        live in different layers: workers answer queries in child
        processes, the store connection stays in the parent."""
        store = tmp_path / "store.sqlite"
        spec = ExperimentSpec(
            target="tcp-handshake",
            name="tcp-handshake",
            workers=2,
            executor=ExecutorSpec(kind="process", workers=2),
        )
        cold = run_spec(spec, store=store)
        assert cold.ok, cold.error
        warm = run_spec(spec, store=store)
        assert warm.ok, warm.error
        assert json.dumps(warm.model.to_dict(), sort_keys=True) == json.dumps(
            cold.model.to_dict(), sort_keys=True
        )
        assert warm.report.sul_resets == 0

"""Smoke tests: the example scripts run end to end."""

import importlib.util
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "6 states" in out
        assert "ACK+SYN(?,?,0)" in out

    def test_synthesize_registers_runs(self, capsys):
        load_example("synthesize_registers").main()
        out = capsys.readouterr().out
        assert "synthesized output terms" in out
        assert "digraph" in out

    def test_learn_quic_models_runs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        load_example("learn_quic_models").main()
        out = capsys.readouterr().out
        assert "12 states" in out
        assert "8 states" in out
        assert (tmp_path / "google.dot").exists()

    def test_sweep_tcp_learners_runs(self, capsys):
        load_example("sweep_tcp_learners").main()
        out = capsys.readouterr().out
        assert "tcp-lstar-s2" in out
        assert "distinct learned behaviours: 1" in out

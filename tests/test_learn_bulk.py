"""Tests for the bulk-trace passive pipeline (corpus IO, middleware,
passive->active refinement)."""

import json

import pytest

from repro.core.trace import IOTrace
from repro.framework import Prognosis
from repro.learn.bulk import (
    CorpusFormatError,
    CorpusSeededCache,
    bulk_passive_learn,
    generate_corpus,
    load_corpus_cache,
    read_jsonl_corpus,
    record_full_corpus,
    seed_oracle_from_corpus,
    stream_corpus,
    write_jsonl_corpus,
)
from repro.learn.cache import QueryCache
from repro.learn.passive import TraceConflictError
from repro.spec import ExperimentSpec, SpecError, assemble
from repro.store import QueryStore
from repro.store.middleware import StoreBackedCache

from repro.core.alphabet import TCPSymbol, parse_tcp_symbol

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["ACK", "SYN"])
NIL = parse_tcp_symbol("NIL")
RST = parse_tcp_symbol("RST(?,?,0)")


def session_traces():
    return [
        IOTrace((SYN,), (SYNACK,)),
        IOTrace((SYN, ACK), (SYNACK, NIL)),
        IOTrace((ACK, ACK), (NIL, NIL)),
    ]


class TestCorpusIO:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        count = write_jsonl_corpus(path, session_traces())
        assert count == 3
        assert list(read_jsonl_corpus(path)) == session_traces()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(path, session_traces())
        text = path.read_text().replace("\n", "\n\n")
        path.write_text(text)
        assert list(read_jsonl_corpus(path)) == session_traces()

    def test_malformed_line_names_its_number(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(path, session_traces()[:1])
        with open(path, "a") as handle:
            handle.write('{"inputs": "not-a-list"}\n')
        with pytest.raises(CorpusFormatError, match="line 2"):
            list(read_jsonl_corpus(path))

    def test_non_json_line_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text("definitely not json\n")
        with pytest.raises(CorpusFormatError, match="line 1"):
            list(read_jsonl_corpus(path))


class TestLoadCorpusCache:
    def test_stats_account_for_the_pass(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(path, session_traces())
        cache, stats = load_corpus_cache(path)
        assert stats.traces == 3
        assert stats.tokens == 5
        assert stats.words == cache.entries > 0
        assert stats.skipped == []
        assert cache.lookup((SYN, ACK)) == (SYNACK, NIL)

    def test_conflicting_trace_skipped_and_reported(self):
        traces = session_traces() + [IOTrace((SYN,), (NIL,))]
        cache, stats = load_corpus_cache(traces)
        assert stats.traces == 3
        assert len(stats.skipped) == 1
        conflict = stats.skipped[0]
        assert conflict.trace_index == 3
        assert conflict.cached == SYNACK
        assert conflict.fresh == NIL
        # The cache keeps the first-seen answer untouched.
        assert cache.lookup((SYN,)) == (SYNACK,)
        assert "trace_index" in conflict.to_dict()

    def test_strict_mode_raises_with_trace_index(self):
        traces = session_traces() + [IOTrace((SYN,), (NIL,))]
        with pytest.raises(TraceConflictError) as excinfo:
            load_corpus_cache(traces, skip_conflicts=False)
        assert excinfo.value.trace_index == 3

    def test_max_traces_truncates(self):
        cache, stats = load_corpus_cache(session_traces(), max_traces=2)
        assert stats.traces == 2
        assert cache.lookup((ACK, ACK)) is None


class TestIndexedCorpusOrdering:
    """Regression: attack-emitted (index, trace) corpora replay in order."""

    def test_pairs_sorted_by_index_before_write(self, tmp_path):
        traces = session_traces()
        # Arrival order scrambled (concurrently confirmed strategies):
        # the file must still come out index-sorted.
        pairs = [(2, traces[2]), (0, traces[0]), (1, traces[1])]
        path = tmp_path / "corpus.jsonl"
        assert write_jsonl_corpus(path, pairs) == 3
        assert list(stream_corpus(path)) == traces

    def test_bare_traces_keep_arrival_order(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(path, session_traces())
        assert list(stream_corpus(path)) == session_traces()

    def test_stream_corpus_caps_the_read(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(path, session_traces())
        assert list(stream_corpus(path, max_traces=2)) == session_traces()[:2]

    def test_stream_corpus_accepts_in_memory_iterables(self):
        assert list(stream_corpus(session_traces())) == session_traces()


class TestCorpusSeededCache:
    def test_registered_as_passive_middleware(self):
        from repro.registry import MIDDLEWARE_REGISTRY, load_builtins

        load_builtins()
        assert "passive" in MIDDLEWARE_REGISTRY

    def test_corpus_hits_counted(self, tmp_path, cached_oracle_for, toy_machine):
        path = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(path, session_traces())
        inner = cached_oracle_for(toy_machine).inner
        layer = CorpusSeededCache(inner, path)
        assert layer.corpus_words == 3
        assert layer.corpus_skipped == 0
        assert layer.query((SYN, ACK)) == (SYNACK, NIL)  # corpus answers
        assert layer.corpus_hits == 1
        assert layer.query((ACK, SYN)) is not None  # live SUL answers
        assert layer.corpus_hits == 1
        assert 0.0 < layer.corpus_hit_rate < 1.0

    def test_conflicting_shared_cache_raises(self, tmp_path, cached_oracle_for, toy_machine):
        from repro.learn.cache import CacheInconsistencyError

        path = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(path, [IOTrace((SYN,), (NIL,))])  # wrong answer
        shared = QueryCache()
        shared.insert((SYN,), (SYNACK,))
        inner = cached_oracle_for(toy_machine).inner
        with pytest.raises(CacheInconsistencyError):
            CorpusSeededCache(inner, path, cache=shared)


class TestSpecWiring:
    def test_corpus_section_upgrades_cache_to_passive(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(path, [])
        spec = ExperimentSpec(
            target="toy", middleware=["cache"], corpus=str(path)
        )
        pipeline = assemble(spec)
        try:
            assert isinstance(pipeline.middleware[0], CorpusSeededCache)
        finally:
            close = getattr(pipeline.sul, "close", None)
            if callable(close):
                close()

    def test_corpus_requires_a_seedable_layer(self, tmp_path):
        spec = ExperimentSpec(
            target="toy", middleware=[], corpus=str(tmp_path / "c.jsonl")
        )
        with pytest.raises(SpecError, match="corpus"):
            spec.validate()

    def test_corpus_round_trips_and_clones(self, tmp_path):
        spec = ExperimentSpec(
            target="toy",
            corpus={"path": "c.jsonl", "max_traces": 10},
        )
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored.corpus.path == "c.jsonl"
        assert restored.corpus.max_traces == 10
        clone = spec.clone()
        assert clone.corpus is not spec.corpus
        assert clone.corpus.to_dict() == spec.corpus.to_dict()
        # The corpus changes where answers come from, never what they are.
        assert (
            spec.sul_fingerprint()
            == ExperimentSpec(target="toy").sul_fingerprint()
        )

    def test_store_plus_corpus_persists_observations(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(corpus, session_traces())
        store = tmp_path / "store.sqlite"
        spec = ExperimentSpec(
            target="toy",
            middleware=["cache"],
            corpus=str(corpus),
            store=str(store),
        )
        pipeline = assemble(spec)
        try:
            layer = pipeline.middleware[0]
            assert isinstance(layer, StoreBackedCache)  # store wins the layer
            assert layer.corpus_stats.traces == 3
            assert layer.corpus_skipped == 0
        finally:
            for m in pipeline.middleware:
                close = getattr(m, "close", None)
                if callable(close):
                    close()
            close = getattr(pipeline.sul, "close", None)
            if callable(close):
                close()
        with QueryStore(store) as persisted:
            assert persisted.word_count(spec.sul_fingerprint()) >= 3

    def test_seed_oracle_skips_conflicts_with_existing_answers(
        self, cached_oracle_for, toy_machine, tmp_path
    ):
        from repro.spec import CorpusSpec

        corpus = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(
            corpus, [IOTrace((SYN, ACK), (NIL, NIL)), IOTrace((ACK,), (NIL,))]
        )
        layer = cached_oracle_for(toy_machine)
        layer.cache.insert((SYN,), (SYNACK,))  # contradicts corpus line 1
        stats = seed_oracle_from_corpus(layer, CorpusSpec(path=str(corpus)))
        assert len(stats.skipped) == 1
        assert layer.cache.lookup((SYN,)) == (SYNACK,)  # existing answer wins
        assert layer.cache.lookup((SYN, ACK)) is None
        assert layer.cache.lookup((ACK,)) == (NIL,)
        assert layer.corpus_skipped == 1


    def test_seed_oracle_strict_mode_raises(
        self, cached_oracle_for, toy_machine, tmp_path
    ):
        from repro.spec import CorpusSpec

        corpus = tmp_path / "corpus.jsonl"
        write_jsonl_corpus(corpus, [IOTrace((SYN, ACK), (NIL, NIL))])
        layer = cached_oracle_for(toy_machine)
        layer.cache.insert((SYN,), (SYNACK,))
        with pytest.raises(TraceConflictError):
            seed_oracle_from_corpus(
                layer, CorpusSpec(path=str(corpus), skip_conflicts=False)
            )

    def test_bulk_learn_through_a_store_backed_stack(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        store = tmp_path / "store.sqlite"
        spec = ExperimentSpec(
            target="toy",
            middleware=["cache"],
            corpus=str(corpus),
            store=str(store),
        )
        generate_corpus(spec, corpus, num_sessions=50)
        result = bulk_passive_learn(spec)
        assert result.model.num_states == 3
        assert result.corpus_stats.traces == 50
        # The corpus observations were persisted through the store layer.
        with QueryStore(store) as persisted:
            assert persisted.word_count(spec.sul_fingerprint()) > 0


class TestGenerateCorpus:
    def test_generate_corpus_is_seed_deterministic(self, tmp_path):
        spec = ExperimentSpec(target="toy", seed=3)
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert generate_corpus(spec, first, num_sessions=25) == 25
        generate_corpus(spec, second, num_sessions=25)
        assert first.read_text() == second.read_text()

    def test_record_full_corpus_covers_the_learner(self, tmp_path):
        corpus = tmp_path / "full.jsonl"
        spec = ExperimentSpec(
            target="toy", middleware=["cache"], corpus=str(corpus)
        )
        assert record_full_corpus(spec, corpus) > 0
        result = bulk_passive_learn(spec)
        # A covering corpus pre-answers everything: zero SUL resets.
        assert result.refined.sul_resets == 0
        assert result.refined.sul_queries == 0
        assert result.passive_model.completeness == 1.0


class TestBulkPipeline:
    def test_requires_a_corpus_section(self):
        with pytest.raises(SpecError, match="corpus"):
            bulk_passive_learn(ExperimentSpec(target="toy"))

    def test_refined_model_matches_pure_active(self, tmp_path, assert_identical_models):
        corpus = tmp_path / "corpus.jsonl"
        spec = ExperimentSpec(
            target="toy", middleware=["cache"], corpus=str(corpus)
        )
        generate_corpus(spec, corpus, num_sessions=60)
        result = bulk_passive_learn(spec)
        with Prognosis.from_spec(ExperimentSpec(target="toy")) as plain:
            active = plain.learn()
        assert_identical_models(result.model, active.model)
        assert result.refined.corpus_hits > 0
        assert result.refined.corpus_hit_rate > 0.0

    def test_partial_corpus_refines_undetermined_cells(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        # A single one-symbol session leaves most of the grid undetermined.
        spec = ExperimentSpec(
            target="toy", middleware=["cache"], corpus=str(corpus)
        )
        generate_corpus(spec, corpus, num_sessions=1, max_len=1)
        result = bulk_passive_learn(spec)
        assert result.targeted_queries > 0
        assert result.passive_model.completeness < 1.0
        assert result.model.num_states == 3  # still converges to the truth

    def test_no_refine_stops_at_the_partial_machine(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        spec = ExperimentSpec(
            target="toy", middleware=["cache"], corpus=str(corpus)
        )
        generate_corpus(spec, corpus, num_sessions=40)
        result = bulk_passive_learn(spec, refine=False)
        assert result.refined is None
        assert result.model is None
        assert result.passive_model.num_states >= 1
        assert "refinement" not in result.summary()

    def test_result_serializes(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        spec = ExperimentSpec(
            target="toy", middleware=["cache"], corpus=str(corpus)
        )
        generate_corpus(spec, corpus, num_sessions=30)
        result = bulk_passive_learn(spec)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["corpus"]["traces"] == 30
        assert payload["passive_model"]["num_states"] >= 1
        assert payload["refined"]["corpus_hits"] == result.refined.corpus_hits

    def test_skipped_conflicts_reach_the_report(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        spec = ExperimentSpec(
            target="toy", middleware=["cache"], corpus=str(corpus)
        )
        generate_corpus(spec, corpus, num_sessions=30)
        with open(corpus, "a") as handle:
            handle.write(
                json.dumps(
                    {
                        "inputs": [
                            {"kind": "tcp", "text": "SYN(?,?,0)"},
                        ],
                        "outputs": [
                            {"kind": "tcp", "text": "RST(?,?,0)"},
                        ],
                    }
                )
                + "\n"
            )
        result = bulk_passive_learn(spec)
        assert len(result.corpus_stats.skipped) == 1
        assert result.refined.corpus_skipped == 1
        assert "skipped conflicts" in result.summary()

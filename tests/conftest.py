"""Shared fixtures: small machines, alphabets, SULs and oracle factories
used across tests."""

from __future__ import annotations

import pytest

from repro.adapter.mealy_sul import MealySUL
from repro.core.alphabet import (
    Alphabet,
    TCPSymbol,
    parse_tcp_symbol,
    quic_alphabet,
    tcp_alphabet,
    tcp_handshake_alphabet,
)
from repro.core.mealy import MealyMachine, mealy_from_table
from repro.learn.cache import CachedMembershipOracle
from repro.learn.teacher import SULMembershipOracle


class FlakySUL(MealySUL):
    """Deterministic machine whose last output flips with period ``period``.

    The periodic blip models transient nondeterminism (a lost datagram, a
    stateless reset): repeated queries disagree occasionally, which the
    majority-vote layer must absorb and the cache layer must flag.
    """

    def __init__(self, machine, flip_symbol, alt_output, period=3):
        super().__init__(machine)
        self._flip_symbol = flip_symbol
        self._alt_output = alt_output
        self._period = period
        self._count = 0

    def _step_impl(self, symbol):
        output, i, o = super()._step_impl(symbol)
        if symbol == self._flip_symbol:
            self._count += 1
            if self._count % self._period == 0:
                return self._alt_output, i, o
        return output, i, o


class VolatileSUL(MealySUL):
    """Answers the first ``stable_queries`` queries faithfully, then flips
    the output of ``flip_symbol`` permanently -- a SUL whose behaviour
    drifts between observations, which the cache must flag."""

    def __init__(self, machine, flip_symbol, alt_output, stable_queries=1):
        super().__init__(machine)
        self._flip_symbol = flip_symbol
        self._alt_output = alt_output
        self._stable_queries = stable_queries

    def _step_impl(self, symbol):
        output, i, o = super()._step_impl(symbol)
        if symbol == self._flip_symbol and self.stats.queries > self._stable_queries:
            return self._alt_output, i, o
        return output, i, o


@pytest.fixture(scope="session")
def make_flaky_sul():
    """Factory for the periodically-flipping SUL (see :class:`FlakySUL`)."""
    return FlakySUL


@pytest.fixture(scope="session")
def make_volatile_sul():
    """Factory for the drifting SUL (see :class:`VolatileSUL`)."""
    return VolatileSUL


@pytest.fixture(scope="session")
def cached_oracle_for():
    """Factory: a cache-fronted membership oracle over a machine-backed SUL
    (the standard stack learner unit tests run against)."""

    def make(machine) -> CachedMembershipOracle:
        return CachedMembershipOracle(SULMembershipOracle(MealySUL(machine)))

    return make


@pytest.fixture(scope="session")
def assert_identical_models():
    """Byte-identical model check: same states, initial state, transitions.

    The acceptance bar for every serial-vs-pooled comparison -- parallel
    execution may only change wall-clock, never what is learned.
    """

    def check(a, b):
        assert a.states == b.states
        assert a.initial_state == b.initial_state
        assert set(a.input_alphabet) == set(b.input_alphabet)
        for state in a.states:
            for symbol in a.input_alphabet:
                assert a.step(state, symbol) == b.step(state, symbol), (
                    f"transition ({state}, {symbol}) differs"
                )

    return check


@pytest.fixture
def ab_alphabet() -> Alphabet:
    """A tiny two-symbol alphabet for automata unit tests."""
    return Alphabet.of(
        [TCPSymbol.make(["SYN"]), TCPSymbol.make(["ACK"])]
    )


@pytest.fixture
def out_symbols() -> tuple:
    return (
        TCPSymbol.make(["ACK", "SYN"]),
        parse_tcp_symbol("NIL"),
    )


@pytest.fixture
def rst_symbol() -> TCPSymbol:
    return parse_tcp_symbol("RST(?,?,0)")


@pytest.fixture
def toy_machine(ab_alphabet, out_symbols, rst_symbol) -> MealyMachine:
    """A minimal 3-state machine: open, established (RSTs a SYN), closed."""
    syn, ack = ab_alphabet.symbols
    synack, nil = out_symbols
    table = [
        ("s0", syn, synack, "s1"),
        ("s0", ack, nil, "s0"),
        ("s1", syn, rst_symbol, "s1"),
        ("s1", ack, nil, "s2"),
        ("s2", syn, nil, "s2"),
        ("s2", ack, nil, "s2"),
    ]
    return mealy_from_table("s0", ab_alphabet, table, name="toy")


@pytest.fixture
def redundant_machine(ab_alphabet, out_symbols, rst_symbol) -> MealyMachine:
    """The toy machine with a duplicated (mergeable) initial state."""
    syn, ack = ab_alphabet.symbols
    synack, nil = out_symbols
    table = [
        ("s0", syn, synack, "s1"),
        ("s0", ack, nil, "s0b"),
        ("s0b", syn, synack, "s1"),
        ("s0b", ack, nil, "s0"),
        ("s1", syn, rst_symbol, "s1"),
        ("s1", ack, nil, "s2"),
        ("s2", syn, nil, "s2"),
        ("s2", ack, nil, "s2"),
    ]
    return mealy_from_table("s0", ab_alphabet, table, name="toy-redundant")


@pytest.fixture(scope="session")
def full_tcp_alphabet() -> Alphabet:
    return tcp_alphabet()


@pytest.fixture(scope="session")
def handshake_alphabet() -> Alphabet:
    return tcp_handshake_alphabet()


@pytest.fixture(scope="session")
def seven_quic_symbols() -> Alphabet:
    return quic_alphabet()

"""Shared fixtures: small machines, alphabets and SULs used across tests."""

from __future__ import annotations

import pytest

from repro.core.alphabet import (
    Alphabet,
    TCPSymbol,
    parse_tcp_symbol,
    quic_alphabet,
    tcp_alphabet,
    tcp_handshake_alphabet,
)
from repro.core.mealy import MealyMachine, mealy_from_table


@pytest.fixture
def ab_alphabet() -> Alphabet:
    """A tiny two-symbol alphabet for automata unit tests."""
    return Alphabet.of(
        [TCPSymbol.make(["SYN"]), TCPSymbol.make(["ACK"])]
    )


@pytest.fixture
def out_symbols() -> tuple:
    return (
        TCPSymbol.make(["ACK", "SYN"]),
        parse_tcp_symbol("NIL"),
    )


@pytest.fixture
def rst_symbol() -> TCPSymbol:
    return parse_tcp_symbol("RST(?,?,0)")


@pytest.fixture
def toy_machine(ab_alphabet, out_symbols, rst_symbol) -> MealyMachine:
    """A minimal 3-state machine: open, established (RSTs a SYN), closed."""
    syn, ack = ab_alphabet.symbols
    synack, nil = out_symbols
    table = [
        ("s0", syn, synack, "s1"),
        ("s0", ack, nil, "s0"),
        ("s1", syn, rst_symbol, "s1"),
        ("s1", ack, nil, "s2"),
        ("s2", syn, nil, "s2"),
        ("s2", ack, nil, "s2"),
    ]
    return mealy_from_table("s0", ab_alphabet, table, name="toy")


@pytest.fixture
def redundant_machine(ab_alphabet, out_symbols, rst_symbol) -> MealyMachine:
    """The toy machine with a duplicated (mergeable) initial state."""
    syn, ack = ab_alphabet.symbols
    synack, nil = out_symbols
    table = [
        ("s0", syn, synack, "s1"),
        ("s0", ack, nil, "s0b"),
        ("s0b", syn, synack, "s1"),
        ("s0b", ack, nil, "s0"),
        ("s1", syn, rst_symbol, "s1"),
        ("s1", ack, nil, "s2"),
        ("s2", syn, nil, "s2"),
        ("s2", ack, nil, "s2"),
    ]
    return mealy_from_table("s0", ab_alphabet, table, name="toy-redundant")


@pytest.fixture(scope="session")
def full_tcp_alphabet() -> Alphabet:
    return tcp_alphabet()


@pytest.fixture(scope="session")
def handshake_alphabet() -> Alphabet:
    return tcp_handshake_alphabet()


@pytest.fixture(scope="session")
def seven_quic_symbols() -> Alphabet:
    return quic_alphabet()

"""Tests for the LTLf engine and model checking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.ltl import (
    Eventually,
    Globally,
    LTLError,
    Next,
    Not,
    Until,
    input_is,
    output_contains,
    output_is,
    parse_ltl,
)
from repro.analysis.properties import check_invariant, check_property, random_traces
from repro.core.alphabet import TCPSymbol
from repro.core.trace import IOTrace

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["SYN", "ACK"])
NIL = TCPSymbol(label="NIL")


def trace(*pairs):
    inputs, outputs = zip(*pairs) if pairs else ((), ())
    return IOTrace(tuple(inputs), tuple(outputs))


class TestSemantics:
    def test_atom(self):
        t = trace((SYN, SYNACK))
        assert input_is(str(SYN)).holds(t)
        assert not input_is(str(ACK)).holds(t)

    def test_globally(self):
        t = trace((SYN, NIL), (ACK, NIL))
        assert Globally(output_is("NIL")).holds(t)
        assert not Globally(input_is(str(SYN))).holds(t)

    def test_eventually(self):
        t = trace((SYN, NIL), (ACK, SYNACK))
        assert Eventually(output_contains("SYN")).holds(t)

    def test_next_is_strong(self):
        t = trace((SYN, NIL))
        assert not Next(output_is("NIL")).holds(t)  # no successor position
        t2 = trace((SYN, NIL), (ACK, NIL))
        assert Next(output_is("NIL")).holds(t2)

    def test_until(self):
        t = trace((SYN, NIL), (SYN, NIL), (ACK, SYNACK))
        formula = Until(output_is("NIL"), output_contains("SYN"))
        assert formula.holds(t)
        t_never = trace((SYN, NIL), (SYN, NIL))
        assert not formula.holds(t_never)

    def test_implication(self):
        t = trace((SYN, SYNACK), (ACK, NIL))
        formula = input_is(str(SYN)).implies(output_contains("SYN"))
        assert Globally(formula).holds(t)

    def test_empty_trace_vacuous(self):
        assert Globally(output_is("anything")).holds(trace())


class TestParser:
    def test_parse_globally(self):
        formula = parse_ltl("G (out == NIL)")
        assert formula.holds(trace((SYN, NIL))) is True
        assert formula.holds(trace((SYN, SYNACK))) is False

    def test_parse_implication_next(self):
        formula = parse_ltl("G ((in == SYN(?,?,0)) -> X (out == NIL))")
        good = trace((TCPSymbol.make(["SYN"], 0, 0, 0), SYNACK))
        # input label here is SYN(0,0,0); the atom does not match, vacuous
        assert formula.holds(good)

    def test_parse_until_and_not(self):
        formula = parse_ltl("(out != NIL) U (out ~ SYN)")
        assert formula.holds(trace((SYN, SYNACK)))

    def test_parse_boolean_connectives(self):
        formula = parse_ltl("(out == NIL) || (out ~ SYN)")
        assert formula.holds(trace((SYN, SYNACK)))
        formula_and = parse_ltl("(out ~ SYN) && (in ~ SYN)")
        assert formula_and.holds(trace((SYN, SYNACK)))

    def test_parse_errors(self):
        with pytest.raises(LTLError):
            parse_ltl("G (out ===== NIL)")
        with pytest.raises(LTLError):
            parse_ltl("(out == NIL")
        with pytest.raises(LTLError):
            parse_ltl("")


class TestModelChecking:
    def test_holding_property(self, toy_machine):
        # The toy machine only SYN+ACKs in response to SYN.
        violation = check_property(
            toy_machine,
            parse_ltl("G ((out ~ ACK+SYN) -> (in ~ SYN))"),
            depth=5,
        )
        assert violation is None

    def test_violated_property_has_witness(self, toy_machine):
        violation = check_property(
            toy_machine, parse_ltl("G (out == NIL)"), depth=4
        )
        assert violation is not None
        assert "SYN" in violation.trace.render()

    def test_invariant_check(self, toy_machine):
        violation = check_invariant(
            toy_machine, lambda t: len(t) <= 10, depth=4
        )
        assert violation is None

    def test_random_traces_come_from_model(self, toy_machine):
        for t in random_traces(toy_machine, num_traces=20, max_length=6, seed=3):
            assert toy_machine.run(t.inputs) == t.outputs


# Property: G p == !F !p on arbitrary traces.
_OUTS = [NIL, SYNACK]


@given(
    st.lists(st.sampled_from(_OUTS), min_size=1, max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_globally_duality(outputs):
    t = IOTrace(tuple(SYN for _ in outputs), tuple(outputs))
    p = output_is("NIL")
    assert Globally(p).holds(t) == Not(Eventually(Not(p))).holds(t)

"""Tests for the LTLf engine and model checking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.ltl import (
    Eventually,
    Globally,
    LTLError,
    Next,
    Not,
    Until,
    input_is,
    output_contains,
    output_is,
    parse_ltl,
)
from repro.analysis.properties import check_invariant, check_property, random_traces
from repro.core.alphabet import TCPSymbol
from repro.core.trace import IOTrace

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["SYN", "ACK"])
NIL = TCPSymbol(label="NIL")


def trace(*pairs):
    inputs, outputs = zip(*pairs) if pairs else ((), ())
    return IOTrace(tuple(inputs), tuple(outputs))


class TestSemantics:
    def test_atom(self):
        t = trace((SYN, SYNACK))
        assert input_is(str(SYN)).holds(t)
        assert not input_is(str(ACK)).holds(t)

    def test_globally(self):
        t = trace((SYN, NIL), (ACK, NIL))
        assert Globally(output_is("NIL")).holds(t)
        assert not Globally(input_is(str(SYN))).holds(t)

    def test_eventually(self):
        t = trace((SYN, NIL), (ACK, SYNACK))
        assert Eventually(output_contains("SYN")).holds(t)

    def test_next_is_strong(self):
        t = trace((SYN, NIL))
        assert not Next(output_is("NIL")).holds(t)  # no successor position
        t2 = trace((SYN, NIL), (ACK, NIL))
        assert Next(output_is("NIL")).holds(t2)

    def test_until(self):
        t = trace((SYN, NIL), (SYN, NIL), (ACK, SYNACK))
        formula = Until(output_is("NIL"), output_contains("SYN"))
        assert formula.holds(t)
        t_never = trace((SYN, NIL), (SYN, NIL))
        assert not formula.holds(t_never)

    def test_implication(self):
        t = trace((SYN, SYNACK), (ACK, NIL))
        formula = input_is(str(SYN)).implies(output_contains("SYN"))
        assert Globally(formula).holds(t)

    def test_empty_trace_vacuous(self):
        assert Globally(output_is("anything")).holds(trace())


class TestParser:
    def test_parse_globally(self):
        formula = parse_ltl("G (out == NIL)")
        assert formula.holds(trace((SYN, NIL))) is True
        assert formula.holds(trace((SYN, SYNACK))) is False

    def test_parse_implication_next(self):
        formula = parse_ltl("G ((in == SYN(?,?,0)) -> X (out == NIL))")
        good = trace((TCPSymbol.make(["SYN"], 0, 0, 0), SYNACK))
        # input label here is SYN(0,0,0); the atom does not match, vacuous
        assert formula.holds(good)

    def test_parse_until_and_not(self):
        formula = parse_ltl("(out != NIL) U (out ~ SYN)")
        assert formula.holds(trace((SYN, SYNACK)))

    def test_parse_boolean_connectives(self):
        formula = parse_ltl("(out == NIL) || (out ~ SYN)")
        assert formula.holds(trace((SYN, SYNACK)))
        formula_and = parse_ltl("(out ~ SYN) && (in ~ SYN)")
        assert formula_and.holds(trace((SYN, SYNACK)))

    def test_parse_errors(self):
        with pytest.raises(LTLError):
            parse_ltl("G (out ===== NIL)")
        with pytest.raises(LTLError):
            parse_ltl("(out == NIL")
        with pytest.raises(LTLError):
            parse_ltl("")


class TestModelChecking:
    def test_holding_property(self, toy_machine):
        # The toy machine only SYN+ACKs in response to SYN.
        violation = check_property(
            toy_machine,
            parse_ltl("G ((out ~ ACK+SYN) -> (in ~ SYN))"),
            depth=5,
        )
        assert violation is None

    def test_violated_property_has_witness(self, toy_machine):
        violation = check_property(
            toy_machine, parse_ltl("G (out == NIL)"), depth=4
        )
        assert violation is not None
        assert "SYN" in violation.trace.render()

    def test_invariant_check(self, toy_machine):
        violation = check_invariant(
            toy_machine, lambda t: len(t) <= 10, depth=4
        )
        assert violation is None

    def test_random_traces_come_from_model(self, toy_machine):
        for t in random_traces(toy_machine, num_traces=20, max_length=6, seed=3):
            assert toy_machine.run(t.inputs) == t.outputs


class TestParserPrecedence:
    """Parse -> evaluate against hand-built combinator trees.

    Structural comparison is impossible (atoms close over lambdas), so
    equivalence is judged by evaluation over a trace set that exercises
    every operator: precedence mistakes flip at least one verdict.
    """

    IN_SYN = input_is(str(SYN))
    IN_ACK = input_is(str(ACK))
    OUT_NIL = output_is("NIL")
    OUT_SYN = output_contains("SYN")

    TRACES = [
        trace(),
        trace((SYN, SYNACK)),
        trace((ACK, NIL)),
        trace((SYN, NIL), (ACK, SYNACK)),
        trace((SYN, SYNACK), (SYN, NIL), (ACK, NIL)),
        trace((ACK, SYNACK), (ACK, NIL), (SYN, SYNACK), (SYN, SYNACK)),
    ]

    def assert_equivalent(self, text, expected):
        parsed = parse_ltl(text)
        for t in self.TRACES:
            assert parsed.holds(t) == expected.holds(t), (text, t.render())

    def test_and_binds_tighter_than_or(self):
        from repro.analysis.ltl import And, Or

        self.assert_equivalent(
            f"in == {SYN} && out == NIL || out ~ SYN",
            Or(And(self.IN_SYN, self.OUT_NIL), self.OUT_SYN),
        )

    def test_not_binds_tighter_than_and(self):
        from repro.analysis.ltl import And

        self.assert_equivalent(
            f"! out == NIL && in == {SYN}",
            And(Not(self.OUT_NIL), self.IN_SYN),
        )

    def test_until_binds_looser_than_or(self):
        from repro.analysis.ltl import Or

        self.assert_equivalent(
            f"out == NIL U in == {SYN} || out ~ SYN",
            Until(self.OUT_NIL, Or(self.IN_SYN, self.OUT_SYN)),
        )

    def test_implication_is_lowest_and_right_associative(self):
        self.assert_equivalent(
            f"G in == {SYN} -> out == NIL -> out ~ SYN",
            Globally(self.IN_SYN).implies(self.OUT_NIL.implies(self.OUT_SYN)),
        )

    def test_temporal_operators_bind_tighter_than_and(self):
        from repro.analysis.ltl import And

        self.assert_equivalent(
            "G out == NIL && F out ~ SYN",
            And(Globally(self.OUT_NIL), Eventually(self.OUT_SYN)),
        )


class TestParserRoundTrip:
    """Seeded random (text, hand-built tree) pairs agree on random traces."""

    ATOMS = [
        (f"in == {SYN}", input_is(str(SYN))),
        ("out == NIL", output_is("NIL")),
        ("out ~ SYN", output_contains("SYN")),
        (f"in != {ACK}", Not(input_is(str(ACK)))),
    ]

    @classmethod
    def random_formula(cls, rng, depth):
        from repro.analysis.ltl import And, Or

        if depth == 0 or rng.random() < 0.3:
            return rng.choice(cls.ATOMS)
        op = rng.choice(["!", "G", "F", "X", "&&", "||", "->", "U"])
        left_text, left = cls.random_formula(rng, depth - 1)
        if op in ("!", "G", "F", "X"):
            built = {
                "!": Not, "G": Globally, "F": Eventually, "X": Next
            }[op](left)
            return f"{op} ({left_text})", built
        right_text, right = cls.random_formula(rng, depth - 1)
        built = {
            "&&": lambda: And(left, right),
            "||": lambda: Or(left, right),
            "->": lambda: left.implies(right),
            "U": lambda: Until(left, right),
        }[op]()
        return f"({left_text}) {op} ({right_text})", built

    def test_seeded_round_trip(self):
        import random

        rng = random.Random(1234)
        steps = [(SYN, SYNACK), (ACK, NIL), (SYN, NIL), (ACK, SYNACK)]
        traces = [
            trace(*[rng.choice(steps) for _ in range(rng.randint(1, 6))])
            for _ in range(25)
        ]
        for _ in range(150):
            text, built = self.random_formula(rng, depth=3)
            parsed = parse_ltl(text)
            for t in traces:
                assert parsed.holds(t) == built.holds(t), text

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_round_trip(self, seed):
        import random

        rng = random.Random(seed)
        text, built = self.random_formula(rng, depth=3)
        parsed = parse_ltl(text)
        steps = [(SYN, SYNACK), (ACK, NIL), (SYN, NIL)]
        for length in range(4):
            t = trace(*[steps[(seed + i) % len(steps)] for i in range(length)])
            assert parsed.holds(t) == built.holds(t), text


class TestParserErrorPaths:
    @pytest.mark.parametrize(
        "text",
        [
            "out == NIL extra",      # trailing tokens
            "G",                     # unexpected end after unary
            "(out == NIL",           # missing closing paren
            "foo == NIL",            # field must be in/out
            "out && NIL",            # unknown atom operator
            "G (out ===== NIL)",     # untokenizable garbage
            "",                      # empty formula
        ],
    )
    def test_malformed_formulas_raise(self, text):
        with pytest.raises(LTLError):
            parse_ltl(text)


class TestRandomTracesEdgeCases:
    def test_empty_alphabet_yields_no_traces(self):
        """Regression: rng.choice(()) used to raise IndexError."""
        from repro.core.alphabet import Alphabet
        from repro.core.mealy import MealyMachine

        empty = MealyMachine("s", Alphabet.of([]), {}, "empty")
        assert random_traces(empty, num_traces=10, max_length=5) == []

    def test_zero_traces_requested(self, toy_machine):
        assert random_traces(toy_machine, num_traces=0, max_length=5) == []


# Property: G p == !F !p on arbitrary traces.
_OUTS = [NIL, SYNACK]


@given(
    st.lists(st.sampled_from(_OUTS), min_size=1, max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_globally_duality(outputs):
    t = IOTrace(tuple(SYN for _ in outputs), tuple(outputs))
    p = output_is("NIL")
    assert Globally(p).holds(t) == Not(Eventually(Not(p))).holds(t)

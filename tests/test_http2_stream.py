"""Tests for the RFC 9113 section 5.1 per-stream state machine."""

import pytest

from repro.http2.frames import ErrorCode
from repro.http2.stream import H2Stream, StreamError, StreamState


def stream(state=StreamState.IDLE) -> H2Stream:
    return H2Stream(1, state=state)


class TestReceiveTransitions:
    """The server-side transition table, one row per (state, event)."""

    def test_idle_headers_opens(self):
        s = stream()
        s.receive_headers(end_stream=False)
        assert s.state is StreamState.OPEN

    def test_idle_headers_with_end_stream_half_closes(self):
        s = stream()
        s.receive_headers(end_stream=True)
        assert s.state is StreamState.HALF_CLOSED_REMOTE

    def test_idle_data_is_connection_error(self):
        with pytest.raises(StreamError) as err:
            stream().receive_data(b"x", end_stream=False)
        assert err.value.error_code is ErrorCode.PROTOCOL_ERROR
        assert err.value.connection_error

    def test_idle_rst_is_connection_error(self):
        with pytest.raises(StreamError) as err:
            stream().receive_rst()
        assert err.value.connection_error

    def test_open_data_stays_open(self):
        s = stream(StreamState.OPEN)
        s.receive_data(b"x", end_stream=False)
        assert s.state is StreamState.OPEN
        assert bytes(s.received_data) == b"x"

    def test_open_data_end_stream_half_closes(self):
        s = stream(StreamState.OPEN)
        s.receive_data(b"x", end_stream=True)
        assert s.state is StreamState.HALF_CLOSED_REMOTE

    def test_open_trailers_require_end_stream(self):
        s = stream(StreamState.OPEN)
        with pytest.raises(StreamError) as err:
            s.receive_headers(end_stream=False)
        assert err.value.error_code is ErrorCode.PROTOCOL_ERROR
        assert not err.value.connection_error  # stream error: RST, not GOAWAY

    def test_open_trailers_with_end_stream(self):
        s = stream(StreamState.OPEN)
        s.receive_headers(end_stream=True)
        assert s.state is StreamState.HALF_CLOSED_REMOTE
        assert s.trailers_received

    def test_open_rst_closes(self):
        s = stream(StreamState.OPEN)
        s.receive_rst()
        assert s.closed

    def test_half_closed_remote_data_is_stream_closed(self):
        s = stream(StreamState.HALF_CLOSED_REMOTE)
        with pytest.raises(StreamError) as err:
            s.receive_data(b"x", end_stream=False)
        assert err.value.error_code is ErrorCode.STREAM_CLOSED
        assert err.value.connection_error

    def test_half_closed_remote_headers_is_stream_closed(self):
        with pytest.raises(StreamError):
            stream(StreamState.HALF_CLOSED_REMOTE).receive_headers(end_stream=True)

    def test_half_closed_remote_rst_closes(self):
        s = stream(StreamState.HALF_CLOSED_REMOTE)
        s.receive_rst()
        assert s.closed

    def test_half_closed_local_end_stream_closes(self):
        s = stream(StreamState.HALF_CLOSED_LOCAL)
        s.receive_data(b"x", end_stream=True)
        assert s.closed


class TestSendTransitions:
    def test_idle_send_headers_opens(self):
        s = stream()
        s.send_headers(end_stream=False)
        assert s.state is StreamState.OPEN

    def test_half_closed_remote_response_closes(self):
        # The server's normal response path: HEADERS then final DATA.
        s = stream(StreamState.HALF_CLOSED_REMOTE)
        s.send_headers(end_stream=False)
        assert s.state is StreamState.HALF_CLOSED_REMOTE
        s.send_data(end_stream=True)
        assert s.closed

    def test_open_send_end_stream_half_closes_local(self):
        s = stream(StreamState.OPEN)
        s.send_data(end_stream=True)
        assert s.state is StreamState.HALF_CLOSED_LOCAL

    def test_send_on_closed_raises(self):
        with pytest.raises(StreamError):
            stream(StreamState.CLOSED).send_data(end_stream=False)
        with pytest.raises(StreamError):
            stream(StreamState.CLOSED).send_headers(end_stream=False)

    def test_send_rst_closes_any_state(self):
        for state in (StreamState.OPEN, StreamState.HALF_CLOSED_REMOTE):
            s = stream(state)
            s.send_rst()
            assert s.closed


class TestFullLifecycles:
    def test_simple_get(self):
        """idle -> half-closed(remote) -> closed: HEADERS+ES, response."""
        s = stream()
        s.receive_headers(end_stream=True)
        s.send_headers(end_stream=False)
        s.send_data(end_stream=True)
        assert s.closed

    def test_post_with_body_and_trailers(self):
        s = stream()
        s.receive_headers(end_stream=False)
        s.receive_data(b"body", end_stream=False)
        s.receive_headers(end_stream=True)  # trailers
        assert s.state is StreamState.HALF_CLOSED_REMOTE
        s.send_headers(end_stream=False)
        s.send_data(end_stream=True)
        assert s.closed

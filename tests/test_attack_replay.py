"""Live-SUL replay: verdict classification, orchestration, corpus emission."""

import json

from repro.adapter.mealy_sul import MealySUL
from repro.analysis.property_api import Property
from repro.attack.automata import AttackerAutomaton, Move
from repro.attack.replay import (
    VERDICT_CONFIRMED,
    VERDICT_DIVERGED,
    VERDICT_REFUTED,
    replay_strategies,
    run_attacks,
)
from repro.attack.search import synthesize_attack
from repro.core.alphabet import Alphabet, TCPSymbol, parse_tcp_symbol
from repro.core.mealy import mealy_from_table
from repro.framework import Prognosis
from repro.learn.bulk import stream_corpus
from repro.learn.cache import CachedMembershipOracle
from repro.learn.teacher import SULMembershipOracle
from repro.spec import AttackSpec, ExperimentSpec

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["ACK", "SYN"])
NIL = parse_tcp_symbol("NIL")
RST = parse_tcp_symbol("RST(?,?,0)")

ALPHABET = Alphabet.of([SYN, ACK])


def toy_attacker() -> AttackerAutomaton:
    return AttackerAutomaton(
        name="toy",
        description="reach the RST answer",
        initial="start",
        moves=(
            Move("start", "SYN(?,?,0)", outcomes=(("~SYN", "in"), ("*", "start"))),
            Move("in", "SYN(?,?,0)", outcomes=(("~RST", "goal"), ("*", None))),
        ),
        goals=frozenset({"goal"}),
        capabilities=frozenset({"client"}),
        targets=("tcp",),
    )


def rst_machine(name="toy-tcp"):
    return mealy_from_table(
        "s0",
        ALPHABET,
        [
            ("s0", SYN, SYNACK, "s1"),
            ("s0", ACK, NIL, "s0"),
            ("s1", SYN, RST, "s1"),
            ("s1", ACK, NIL, "s1"),
        ],
        name=name,
    )


def quiet_machine(name="quiet-tcp"):
    """Same shape, but established SYNs draw NIL -- no RST, ever."""
    return mealy_from_table(
        "s0",
        ALPHABET,
        [
            ("s0", SYN, SYNACK, "s1"),
            ("s0", ACK, NIL, "s0"),
            ("s1", SYN, NIL, "s1"),
            ("s1", ACK, NIL, "s1"),
        ],
        name=name,
    )


def oracle_over(machine) -> CachedMembershipOracle:
    return CachedMembershipOracle(SULMembershipOracle(MealySUL(machine)))


class TestVerdicts:
    def test_confirmed_when_live_matches(self):
        model = rst_machine()
        strategy = synthesize_attack(model, toy_attacker())
        results = replay_strategies(
            [(toy_attacker(), strategy)], oracle_over(model)
        )
        (result,) = results
        assert result.verdict == VERDICT_CONFIRMED
        assert result.goal_reached and result.output_match
        assert result.minimized_confirmed

    def test_diverged_when_live_contradicts_the_model(self):
        # Strategy synthesized from the RST model, replayed against the
        # quiet live system: outputs differ, goal missed -> model drift.
        strategy = synthesize_attack(rst_machine(), toy_attacker())
        (result,) = replay_strategies(
            [(toy_attacker(), strategy)], oracle_over(quiet_machine())
        )
        assert result.verdict == VERDICT_DIVERGED
        assert not result.goal_reached and not result.output_match

    def test_refuted_by_replay_time_oracle_objective(self):
        # The live system answers exactly as predicted, but the
        # oracle-kind objective (checkable only at replay time) finds no
        # violating entries: attack refuted, not confirmed.
        model = rst_machine()
        strategy = synthesize_attack(model, toy_attacker())
        never = Property.oracle("never", check=lambda table: [])
        (result,) = replay_strategies(
            [(toy_attacker(), strategy)],
            oracle_over(model),
            objective=never,
            oracle_table={},  # empty table: nothing to violate
        )
        assert result.verdict == VERDICT_REFUTED
        assert result.output_match and not result.goal_reached

    def test_empty_strategy_list(self):
        assert replay_strategies([], oracle_over(rst_machine())) == []


class TestRunAttacks:
    def test_confirmed_end_to_end_with_corpus(self, tmp_path):
        corpus = tmp_path / "attacks.jsonl"
        spec = ExperimentSpec(
            target="tcp",
            seed=7,
            name="tcp",
            attack=AttackSpec(
                attacker="challenge-ack-exhaust", corpus_out=str(corpus)
            ),
        )
        with Prognosis.from_spec(spec) as prognosis:
            model = prognosis.learn().model
            report = run_attacks(spec, model, prognosis.oracle)
        assert report.ok
        assert [r.verdict for r in report.results] == [VERDICT_CONFIRMED]
        (result,) = report.results
        # Acceptance bar: the ddmin witness is no longer than the
        # product-BFS shortest path, and itself confirms live.
        assert len(result.strategy.minimized) <= len(result.strategy.word)
        assert result.minimized_confirmed
        assert report.corpus_path == str(corpus)
        traces = list(stream_corpus(corpus))
        assert traces == [result.live_trace]

    def test_conformant_variant_reports_unreachable(self):
        spec = ExperimentSpec(
            target="tcp-no-challenge-ack",
            seed=7,
            name="tcp-no-challenge-ack",
            attack=AttackSpec(attacker="challenge-ack-exhaust"),
        )
        with Prognosis.from_spec(spec) as prognosis:
            model = prognosis.learn().model
            report = run_attacks(spec, model, prognosis.oracle)
        assert report.results == []
        assert report.unreachable == ["challenge-ack-exhaust"]
        assert report.ok  # no false attack, and unreachable is not failure
        assert "unreachable" in report.render()

    def test_inapplicable_attacker_skipped(self):
        spec = ExperimentSpec(
            target="tcp",
            seed=7,
            name="tcp",
            attack=AttackSpec(attacker="rapid-reset"),
        )
        with Prognosis.from_spec(spec) as prognosis:
            model = prognosis.learn().model
            report = run_attacks(spec, model, prognosis.oracle)
        assert report.skipped == ["rapid-reset"]
        assert report.results == [] and report.unreachable == []

    def test_default_attacker_set_comes_from_registry(self):
        spec = ExperimentSpec(
            target="tcp", seed=7, name="tcp", attack=AttackSpec()
        )
        with Prognosis.from_spec(spec) as prognosis:
            model = prognosis.learn().model
            report = run_attacks(spec, model, prognosis.oracle)
        ran = {r.strategy.attacker for r in report.results}
        assert ran == {"off-path-rst", "challenge-ack-exhaust"}
        assert report.ok

    def test_divergence_surfaces_a_model_diff(self):
        # A stale model (the rate-limited tcp) driving attacks against
        # the conformant live variant: the replay diverges and the drift
        # is explained by a fresh-model diff.
        stale_spec = ExperimentSpec(target="tcp", seed=7, name="tcp")
        with Prognosis.from_spec(stale_spec) as prognosis:
            stale_model = prognosis.learn().model
        live_spec = ExperimentSpec(
            target="tcp-no-challenge-ack",
            seed=7,
            name="tcp",  # pinned: keep model bytes comparable
            attack=AttackSpec(attacker="challenge-ack-exhaust"),
        )
        with Prognosis.from_spec(live_spec) as prognosis:
            prognosis.learn()
            report = run_attacks(live_spec, stale_model, prognosis.oracle)
        (result,) = report.results
        assert result.verdict == VERDICT_DIVERGED
        assert not report.ok
        assert result.model_diff is not None
        assert not result.model_diff.equivalent
        assert "diverged" in report.summary()

    def test_report_to_dict_is_json_able(self, tmp_path):
        spec = ExperimentSpec(
            target="tcp",
            seed=7,
            name="tcp",
            attack=AttackSpec(attacker="off-path-rst"),
        )
        with Prognosis.from_spec(spec) as prognosis:
            model = prognosis.learn().model
            report = run_attacks(spec, model, prognosis.oracle)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["ok"] is True
        assert data["target"] == "tcp"
        assert data["results"][0]["verdict"] == VERDICT_CONFIRMED

"""Tests for the behaviour tables: shape, minimality, documented bugs."""

import pytest

from repro.core.alphabet import QUICSymbol, QUICOutput, quic_alphabet
from repro.core.mealy import MealyMachine
from repro.quic.behavior import (
    ALL_INPUTS,
    BehaviorCore,
    BehaviorTable,
    NIL,
    google_table,
    input_key,
    mvfst_table,
    quiche_table,
    spec,
)


def table_to_mealy(table: BehaviorTable) -> MealyMachine:
    """Interpret a behaviour table as a Mealy machine over the 7 inputs.

    Outputs are rendered as canonical QUICOutput multisets, matching what
    the adapter abstracts from the realized packets.
    """
    alphabet = quic_alphabet()
    key_for = {
        input_key(s.packet_type, s.frames): s for s in alphabet
    }
    transitions = {}
    for state, row in table.rows.items():
        for key, (output, target) in row.items():
            symbol = key_for[key]
            packets = QUICOutput.make(
                QUICSymbol.make(p.packet_type, p.frames) for p in output
            )
            transitions[(state, symbol)] = (target, packets)
    return MealyMachine(table.initial_state, alphabet, transitions, table.name)


class TestTableShape:
    def test_google_dimensions_match_paper(self):
        machine = table_to_mealy(google_table())
        assert machine.num_states == 12
        assert machine.num_transitions == 84

    def test_quiche_dimensions_match_paper(self):
        machine = table_to_mealy(quiche_table())
        assert machine.num_states == 8
        assert machine.num_transitions == 56

    def test_google_table_is_minimal(self):
        machine = table_to_mealy(google_table())
        assert machine.minimize().num_states == machine.num_states

    def test_quiche_table_is_minimal(self):
        machine = table_to_mealy(quiche_table())
        assert machine.minimize().num_states == machine.num_states

    def test_tables_are_input_complete(self):
        for factory in (google_table, quiche_table, mvfst_table):
            table = factory()
            for state, row in table.rows.items():
                assert set(row) == set(ALL_INPUTS), f"{table.name}/{state}"

    def test_validation_rejects_missing_input(self):
        rows = {"a": {ALL_INPUTS[0]: (NIL, "a")}}
        with pytest.raises(ValueError):
            BehaviorTable(name="bad", initial_state="a", rows=rows)

    def test_validation_rejects_unknown_target(self):
        rows = {"a": {key: (NIL, "ghost") for key in ALL_INPUTS}}
        with pytest.raises(ValueError):
            BehaviorTable(name="bad", initial_state="a", rows=rows)


class TestSemantics:
    def test_google_handshake_path(self):
        core = BehaviorCore(google_table())
        out1 = core.react(input_key("INITIAL", ("CRYPTO",)))
        assert spec("SHORT", "STREAM") in out1  # 0.5-RTT push
        out2 = core.react(input_key("HANDSHAKE", ("ACK", "CRYPTO")))
        assert spec("SHORT", "HANDSHAKE_DONE") in out2
        assert core.state == "g2"

    def test_quiche_has_no_half_rtt_push(self):
        core = BehaviorCore(quiche_table())
        out1 = core.react(input_key("INITIAL", ("CRYPTO",)))
        assert spec("SHORT", "STREAM") not in out1

    def test_unknown_input_is_ignored(self):
        core = BehaviorCore(google_table())
        output = core.react(input_key("SHORT", ("PING",)))
        assert output == NIL
        assert core.state == "g0"

    def test_handshake_done_violation_closes(self):
        core = BehaviorCore(google_table())
        core.react(input_key("INITIAL", ("CRYPTO",)))
        output = core.react(input_key("HANDSHAKE", ("ACK", "HANDSHAKE_DONE")))
        assert any("CONNECTION_CLOSE" in p.frames for p in output)
        assert core.state == "g4"

    def test_mvfst_flaky_state_after_close(self):
        core = BehaviorCore(mvfst_table())
        core.react(input_key("INITIAL", ("CRYPTO",)))
        core.react(input_key("HANDSHAKE", ("ACK", "HANDSHAKE_DONE")))
        assert core.is_flaky

    def test_google_pn_reset_abort(self):
        core = BehaviorCore(google_table())
        assert core.abort_for_pn_reset()
        assert core.state == "g4"

    def test_quiche_tolerates_pn_reset(self):
        core = BehaviorCore(quiche_table())
        assert not core.abort_for_pn_reset()

    def test_google_blocked_flow(self):
        core = BehaviorCore(google_table())
        core.react(input_key("INITIAL", ("CRYPTO",)))
        core.react(input_key("HANDSHAKE", ("ACK", "CRYPTO")))
        core.react(input_key("SHORT", ("ACK", "STREAM")))
        blocked = core.react(input_key("SHORT", ("ACK", "STREAM")))
        assert spec("SHORT", "ACK", "STREAM", "STREAM_DATA_BLOCKED") in blocked
        flushed = core.react(
            input_key("SHORT", ("ACK", "MAX_DATA", "MAX_STREAM_DATA"))
        )
        assert spec("SHORT", "ACK", "STREAM") in flushed

    def test_models_differ_between_implementations(self):
        from repro.analysis.equivalence import find_difference

        google = table_to_mealy(google_table())
        quiche = table_to_mealy(quiche_table())
        assert find_difference(google, quiche) is not None

"""Unit tests for abstract symbols and alphabets."""

import pytest

from repro.core.alphabet import (
    Alphabet,
    QUIC_EMPTY_OUTPUT,
    QUICOutput,
    QUICSymbol,
    SymbolError,
    TCP_NIL,
    TCPSymbol,
    parse_quic_output,
    parse_quic_symbol,
    parse_tcp_symbol,
    quic_alphabet,
    tcp_alphabet,
    tcp_handshake_alphabet,
)


class TestTCPSymbol:
    def test_make_canonicalizes_flag_order(self):
        a = TCPSymbol.make(["SYN", "ACK"])
        b = TCPSymbol.make(["ACK", "SYN"])
        assert a == b
        assert a.label == "ACK+SYN(?,?,0)"

    def test_parse_round_trips_canonical_labels(self):
        for text in ["SYN(?,?,0)", "ACK+PSH(?,?,1)", "ACK+FIN(?,?,0)"]:
            assert str(parse_tcp_symbol(text)) == text

    def test_parse_canonicalizes_paper_spelling(self):
        # The paper writes FIN+ACK for inputs and ACK+FIN for outputs;
        # both spellings parse to the same canonical symbol.
        assert parse_tcp_symbol("FIN+ACK(?,?,0)") == parse_tcp_symbol(
            "ACK+FIN(?,?,0)"
        )

    def test_parse_rejects_garbage(self):
        with pytest.raises(SymbolError):
            parse_tcp_symbol("SYN")
        with pytest.raises(SymbolError):
            parse_tcp_symbol("SIN(?,?,0)")

    def test_nil_is_special(self):
        assert parse_tcp_symbol("NIL") is TCP_NIL
        assert TCP_NIL.is_nil
        assert not parse_tcp_symbol("SYN(?,?,0)").is_nil

    def test_unknown_flag_rejected(self):
        with pytest.raises(SymbolError):
            TCPSymbol.make(["SYN", "XXX"])

    def test_payload_length_in_label(self):
        assert TCPSymbol.make(["ACK", "PSH"], payload_len=1).label == "ACK+PSH(?,?,1)"

    def test_symbols_are_hashable_and_ordered(self):
        symbols = {TCPSymbol.make(["SYN"]), TCPSymbol.make(["ACK"])}
        assert len(symbols) == 2
        assert sorted(symbols)


class TestQUICSymbol:
    def test_make_sorts_frames(self):
        a = QUICSymbol.make("INITIAL", ["CRYPTO", "ACK"])
        assert a.label == "INITIAL(?,?)[ACK,CRYPTO]"

    def test_parse_round_trips(self):
        for text in [
            "INITIAL(?,?)[CRYPTO]",
            "SHORT(?,?)[ACK,MAX_DATA,MAX_STREAM_DATA]",
            "HANDSHAKE(?,?)[ACK,HANDSHAKE_DONE]",
        ]:
            assert str(parse_quic_symbol(text)) == text

    def test_unknown_packet_type_rejected(self):
        with pytest.raises(SymbolError):
            QUICSymbol.make("BOGUS", ["ACK"])

    def test_unknown_frame_rejected(self):
        with pytest.raises(SymbolError):
            QUICSymbol.make("INITIAL", ["NOT_A_FRAME"])

    def test_empty_frame_list_allowed(self):
        assert parse_quic_symbol("RETRY(?,?)[]").frames == ()


class TestQUICOutput:
    def test_empty_output_renders_braces(self):
        assert str(QUIC_EMPTY_OUTPUT) == "{}"
        assert QUIC_EMPTY_OUTPUT.is_empty

    def test_multiset_keeps_duplicates(self):
        crypto = parse_quic_symbol("HANDSHAKE(?,?)[CRYPTO]")
        output = QUICOutput.make([crypto, crypto])
        assert len(output) == 2

    def test_order_insensitive_equality(self):
        a = parse_quic_symbol("HANDSHAKE(?,?)[CRYPTO]")
        b = parse_quic_symbol("INITIAL(?,?)[ACK,CRYPTO]")
        assert QUICOutput.make([a, b]) == QUICOutput.make([b, a])

    def test_parse_round_trips(self):
        text = "{HANDSHAKE(?,?)[CRYPTO],HANDSHAKE(?,?)[CRYPTO],INITIAL(?,?)[ACK,CRYPTO]}"
        assert str(parse_quic_output(text)) == text

    def test_parse_empty(self):
        assert parse_quic_output("{}") == QUIC_EMPTY_OUTPUT

    def test_frame_types_union(self):
        output = parse_quic_output(
            "{HANDSHAKE(?,?)[CRYPTO],SHORT(?,?)[ACK,STREAM]}"
        )
        assert output.frame_types() == {"CRYPTO", "ACK", "STREAM"}


class TestAlphabet:
    def test_rejects_duplicates(self):
        syn = TCPSymbol.make(["SYN"])
        with pytest.raises(SymbolError):
            Alphabet.of([syn, syn])

    def test_index_and_contains(self):
        alphabet = tcp_alphabet()
        symbol = parse_tcp_symbol("RST(?,?,0)")
        assert symbol in alphabet
        assert alphabet[alphabet.index(symbol)] == symbol

    def test_index_raises_for_foreign_symbol(self):
        with pytest.raises(SymbolError):
            tcp_alphabet().index(TCPSymbol.make(["URG"]))

    def test_paper_alphabet_sizes(self):
        assert len(tcp_alphabet()) == 7
        assert len(tcp_handshake_alphabet()) == 2
        assert len(quic_alphabet()) == 7

"""Tests for the adapter layer: SUL interface, queue, TCP/QUIC adapters."""

import pytest

from repro.adapter.mealy_sul import MealySUL
from repro.adapter.queue import PacketQueue
from repro.adapter.quic_adapter import QUICAdapterSUL
from repro.adapter.tcp_adapter import TCPAdapterSUL, abstract_segment
from repro.core.alphabet import (
    parse_quic_symbol,
    parse_tcp_symbol,
    tcp_handshake_alphabet,
)
from repro.quic.impls.quiche import quiche_server
from repro.tcp.segment import TCPSegment

SYN = parse_tcp_symbol("SYN(?,?,0)")
ACK = parse_tcp_symbol("ACK(?,?,0)")


class TestPacketQueue:
    def test_fifo_within_key(self):
        queue = PacketQueue()
        queue.push("k", 1)
        queue.push("k", 2)
        assert queue.find("k") == 1
        assert queue.find("k") == 2
        assert queue.find("k") is None

    def test_miss_counting(self):
        queue = PacketQueue()
        queue.push("a", 1)
        queue.find("b")
        queue.find("a")
        assert queue.hits == 1
        assert queue.misses == 1
        assert queue.hit_rate == 0.5

    def test_clear(self):
        queue = PacketQueue()
        queue.push("a", 1)
        queue.clear()
        assert len(queue) == 0


class TestAbstraction:
    def test_tcp_alpha_strips_numbers(self):
        segment = TCPSegment(1, 2, 12345, 999, flags=frozenset({"SYN", "ACK"}))
        assert str(abstract_segment(segment)) == "ACK+SYN(?,?,0)"

    def test_tcp_alpha_caps_payload_length(self):
        segment = TCPSegment(1, 2, 0, 0, flags=frozenset({"ACK"}), payload=b"xyz")
        assert abstract_segment(segment).payload_len == 1


class TestTCPAdapterSUL:
    def test_query_records_oracle_entry(self):
        sul = TCPAdapterSUL(alphabet=tcp_handshake_alphabet())
        outputs = sul.query((SYN, ACK))
        assert str(outputs[0]) == "ACK+SYN(?,?,0)"
        entry = sul.oracle_table.lookup((SYN, ACK))
        assert entry is not None
        # relative numbering: the server acks client ISS + 1 -> an == 1
        assert entry.steps[0].output_params["an"] == 1

    def test_stats_accumulate(self):
        sul = TCPAdapterSUL(alphabet=tcp_handshake_alphabet())
        sul.query((SYN,))
        sul.query((SYN, ACK))
        assert sul.stats.queries == 2
        assert sul.stats.resets == 2
        assert sul.stats.steps == 3

    def test_determinism_across_queries(self):
        sul = TCPAdapterSUL(alphabet=tcp_handshake_alphabet())
        first = sul.query((SYN, ACK, SYN))
        second = sul.query((SYN, ACK, SYN))
        assert first == second

    def test_foreign_symbol_rejected(self):
        sul = TCPAdapterSUL()
        with pytest.raises(TypeError):
            sul.query((parse_quic_symbol("INITIAL(?,?)[CRYPTO]"),))


class TestQUICAdapterSUL:
    def test_handshake_abstraction(self):
        sul = QUICAdapterSUL(lambda n: quiche_server(n))
        ch = parse_quic_symbol("INITIAL(?,?)[CRYPTO]")
        outputs = sul.query((ch,))
        assert (
            str(outputs[0])
            == "{HANDSHAKE(?,?)[CRYPTO],HANDSHAKE(?,?)[CRYPTO],INITIAL(?,?)[ACK,CRYPTO]}"
        )

    def test_oracle_params_capture_packet_numbers(self):
        sul = QUICAdapterSUL(lambda n: quiche_server(n))
        ch = parse_quic_symbol("INITIAL(?,?)[CRYPTO]")
        sul.query((ch,))
        entry = sul.oracle_table.lookup((ch,))
        assert entry.steps[0].input_params["pn"] == 0
        assert "pn" in entry.steps[0].output_params

    def test_determinism_across_queries(self):
        sul = QUICAdapterSUL(lambda n: quiche_server(n))
        ch = parse_quic_symbol("INITIAL(?,?)[CRYPTO]")
        hc = parse_quic_symbol("HANDSHAKE(?,?)[ACK,CRYPTO]")
        assert sul.query((ch, hc)) == sul.query((ch, hc))


class TestMealySUL:
    def test_replays_machine(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        sul = MealySUL(toy_machine)
        assert sul.query((syn, ack)) == toy_machine.run((syn, ack))

    def test_reset_between_queries(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        sul = MealySUL(toy_machine)
        sul.query((syn,))
        assert sul.query((syn,)) == toy_machine.run((syn,))

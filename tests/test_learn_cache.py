"""Tests for the query cache and nondeterminism detection layers."""

from collections import Counter

import pytest

from repro.adapter.mealy_sul import MealySUL
from repro.learn.cache import (
    CacheInconsistencyError,
    CachedMembershipOracle,
    QueryCache,
)
from repro.learn.nondeterminism import (
    MajorityVoteOracle,
    NondeterminismError,
    NondeterminismPolicy,
    estimate_response_distribution,
)
from repro.learn.teacher import SULMembershipOracle


class TestQueryCache:
    def test_lookup_after_insert(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        cache = QueryCache()
        cache.insert((syn, ack), toy_machine.run((syn, ack)))
        assert cache.lookup((syn, ack)) == toy_machine.run((syn, ack))

    def test_prefix_answered(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        cache = QueryCache()
        cache.insert((syn, ack), toy_machine.run((syn, ack)))
        assert cache.lookup((syn,)) == toy_machine.run((syn,))

    def test_extension_misses(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        cache = QueryCache()
        cache.insert((syn,), toy_machine.run((syn,)))
        assert cache.lookup((syn, ack)) is None

    def test_conflict_detected(self, ab_alphabet, out_symbols):
        syn, _ = ab_alphabet.symbols
        synack, nil = out_symbols
        cache = QueryCache()
        cache.insert((syn,), (synack,))
        with pytest.raises(CacheInconsistencyError):
            cache.insert((syn,), (nil,))

    def test_clear(self, ab_alphabet, out_symbols):
        syn, _ = ab_alphabet.symbols
        synack, _ = out_symbols
        cache = QueryCache()
        cache.insert((syn,), (synack,))
        cache.clear()
        assert cache.lookup((syn,)) is None
        assert cache.entries == 0

    def test_merge_from_transfers_observations(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        source, destination = QueryCache(), QueryCache()
        source.insert((syn, ack), toy_machine.run((syn, ack)))
        destination.merge_from(source)
        assert destination.lookup((syn, ack)) == toy_machine.run((syn, ack))

    def test_merge_from_raises_on_disagreement(self, ab_alphabet, out_symbols):
        """Two caches answering the same word differently must never merge
        silently -- that is how a store of a changed SUL gets poisoned."""
        syn, _ = ab_alphabet.symbols
        synack, nil = out_symbols
        first, second = QueryCache(), QueryCache()
        first.insert((syn,), (synack,))
        second.insert((syn,), (nil,))
        with pytest.raises(CacheInconsistencyError):
            first.merge_from(second)

    def test_failed_merge_leaves_destination_untouched(
        self, ab_alphabet, out_symbols
    ):
        """The merge is atomic: a conflict anywhere in the source must not
        leave the destination with half the source's words inserted."""
        syn, ack = ab_alphabet.symbols
        synack, nil = out_symbols
        destination = QueryCache()
        destination.insert((syn,), (synack,))
        source = QueryCache()
        source.insert((ack,), (nil,))  # compatible: would be new
        source.insert((syn,), (nil,))  # conflicts with the destination
        with pytest.raises(CacheInconsistencyError):
            destination.merge_from(source)
        assert destination.lookup((ack,)) is None  # nothing leaked in
        assert destination.entries == 1


class TestCachedOracle:
    def test_second_query_is_a_hit(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        sul = MealySUL(toy_machine)
        oracle = CachedMembershipOracle(SULMembershipOracle(sul))
        oracle.query((syn, ack))
        oracle.query((syn, ack))
        assert oracle.hits == 1
        assert sul.stats.queries == 1

    def test_prefix_hit_avoids_sul(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        sul = MealySUL(toy_machine)
        oracle = CachedMembershipOracle(SULMembershipOracle(sul))
        oracle.query((syn, ack))
        oracle.query((syn,))
        assert sul.stats.queries == 1
        assert oracle.hit_rate == 0.5


class TestMajorityVote:
    def test_deterministic_passes_through(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        oracle = MajorityVoteOracle(
            SULMembershipOracle(MealySUL(toy_machine)),
            NondeterminismPolicy(min_repeats=2, max_repeats=4),
        )
        assert oracle.query((syn, ack)) == toy_machine.run((syn, ack))

    def test_nondeterminism_detected(
        self, toy_machine, ab_alphabet, out_symbols, make_flaky_sul
    ):
        syn, ack = ab_alphabet.symbols
        synack, nil = out_symbols
        flaky = make_flaky_sul(toy_machine, flip_symbol=ack, alt_output=synack, period=2)
        oracle = MajorityVoteOracle(
            SULMembershipOracle(flaky),
            NondeterminismPolicy(min_repeats=3, max_repeats=6, certainty=0.95),
        )
        with pytest.raises(NondeterminismError) as excinfo:
            oracle.query((syn, ack))
        assert excinfo.value.frequency_of_most_common() <= 0.95
        assert oracle.nondeterministic_queries == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            NondeterminismPolicy(min_repeats=0)
        with pytest.raises(ValueError):
            NondeterminismPolicy(certainty=0.4)
        with pytest.raises(ValueError):
            NondeterminismPolicy(min_repeats=5, max_repeats=2)

    def test_distribution_estimate(
        self, toy_machine, ab_alphabet, out_symbols, make_flaky_sul
    ):
        syn, ack = ab_alphabet.symbols
        synack, _ = out_symbols
        flaky = make_flaky_sul(toy_machine, flip_symbol=ack, alt_output=synack, period=4)
        oracle = SULMembershipOracle(flaky)
        distribution = estimate_response_distribution(oracle, (syn, ack), 40)
        assert isinstance(distribution, Counter)
        assert sum(distribution.values()) == 40
        assert len(distribution) == 2

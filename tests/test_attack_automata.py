"""Attacker-automaton formalism: pattern matching, capabilities, observers."""

import pytest

from repro.attack.automata import (
    ATTACK_REGISTRY,
    AttackerAutomaton,
    Move,
    match_output,
    resolve_attacker,
)
from repro.core.alphabet import TCPSymbol, parse_tcp_symbol
from repro.core.trace import IOTrace
from repro.registry import RegistryError, attacks_for

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["ACK", "SYN"])
NIL = parse_tcp_symbol("NIL")


def tiny_attacker(capabilities=("client", "inject")) -> AttackerAutomaton:
    """start --SYN/SYN+ACK--> in, in --ACK[inject]/NIL--> goal."""
    return AttackerAutomaton(
        name="tiny",
        description="two-step toy adversary",
        initial="start",
        moves=(
            Move("start", "SYN(?,?,0)", outcomes=(("~SYN", "in"), ("*", None))),
            Move(
                "in",
                "ACK(?,?,0)",
                outcomes=(("NIL", "goal"),),
                capability="inject",
            ),
        ),
        goals=frozenset({"goal"}),
        capabilities=frozenset(capabilities),
        targets=("tcp",),
    )


class TestOutputMatching:
    def test_wildcard_matches_anything(self):
        assert match_output("*", "GOAWAY[]")
        assert match_output("*", "")

    def test_substring_pattern(self):
        assert match_output("~SYN", "ACK+SYN(?,?,0)")
        assert not match_output("~SYN", "ACK(?,?,0)")

    def test_exact_pattern(self):
        assert match_output("NIL", "NIL")
        assert not match_output("NIL", "NIL2")

    def test_first_matching_outcome_wins(self):
        move = Move("s", "SYN(?,?,0)", outcomes=(("~ACK", "a"), ("*", "b")))
        attacker = tiny_attacker()
        assert attacker.outcome(move, "ACK+SYN(?,?,0)") == "a"
        assert attacker.outcome(move, "RST(?,?,0)") == "b"

    def test_no_matching_outcome_prunes(self):
        move = Move("s", "SYN(?,?,0)", outcomes=(("NIL", "a"),))
        assert tiny_attacker().outcome(move, "RST(?,?,0)") is None


class TestCapabilities:
    def test_enabled_filters_by_capability(self):
        weak = tiny_attacker(capabilities=("client",))
        assert [m.symbol for m in weak.enabled("start")] == ["SYN(?,?,0)"]
        assert weak.enabled("in") == ()  # inject not granted

    def test_full_capabilities_enable_all_moves(self):
        strong = tiny_attacker()
        assert [m.symbol for m in strong.enabled("in")] == ["ACK(?,?,0)"]


class TestObserve:
    def test_goal_trace_observed(self):
        trace = IOTrace((SYN, ACK), (SYNACK, NIL))
        assert tiny_attacker().observe(trace)

    def test_non_goal_trace_rejected(self):
        trace = IOTrace((ACK, ACK), (NIL, NIL))
        assert not tiny_attacker().observe(trace)

    def test_lenient_on_unmatched_steps(self):
        # A padded trace (extra ACK up front, extra SYN in the middle)
        # still reaches the goal: unmatched steps stay put, they never
        # prune.  This is what makes ddmin subsequence shrinking sound.
        trace = IOTrace(
            (ACK, SYN, SYN, ACK),
            (NIL, SYNACK, SYNACK, NIL),
        )
        assert tiny_attacker().observe(trace)

    def test_goal_is_sticky(self):
        trace = IOTrace((SYN, ACK, SYN), (SYNACK, NIL, NIL))
        assert tiny_attacker().observe(trace)

    def test_weak_attacker_cannot_observe_goal(self):
        trace = IOTrace((SYN, ACK), (SYNACK, NIL))
        assert not tiny_attacker(capabilities=("client",)).observe(trace)


class TestApplicability:
    def test_exact_target(self):
        assert tiny_attacker().applicable_to("tcp")

    def test_family_stem(self):
        assert tiny_attacker().applicable_to("tcp-no-challenge-ack")

    def test_other_family_rejected(self):
        assert not tiny_attacker().applicable_to("http2-buggy")


class TestRegistry:
    def test_builtins_registered(self):
        names = set(ATTACK_REGISTRY.names())
        assert {
            "off-path-rst",
            "challenge-ack-exhaust",
            "rapid-reset",
            "goaway-drain",
        } <= names

    def test_unknown_attacker_lists_registered_keys(self):
        with pytest.raises(RegistryError) as err:
            resolve_attacker("nope")
        message = str(err.value)
        assert "nope" in message
        assert "off-path-rst" in message
        assert "attacker automaton" in message

    def test_attacks_for_tcp_family(self):
        assert attacks_for("tcp") == ("off-path-rst", "challenge-ack-exhaust")
        assert attacks_for("tcp-no-challenge-ack") == attacks_for("tcp")

    def test_attacks_for_http_variants(self):
        assert attacks_for("http2-buggy") == ("rapid-reset",)
        assert attacks_for("http3-buggy") == ("goaway-drain",)

    def test_attacks_for_unknown_target_is_empty_not_an_error(self):
        assert attacks_for("dns") == ()

    def test_builtin_automata_have_reachable_goal_structure(self):
        for name in ("off-path-rst", "challenge-ack-exhaust", "rapid-reset",
                     "goaway-drain"):
            attacker = resolve_attacker(name)
            assert attacker.name == name
            assert attacker.goals
            assert attacker.enabled(attacker.initial)

"""Tests for the static-table QPACK codec and the shared HPACK primitives.

QPACK deliberately reuses the RFC 7541 integer/string codecs through the
:class:`~repro.http2.hpack.StaticTable` interface, so alongside the
QPACK round-trips this file pins the HPACK side byte-identical -- the
satellite guarantee that growing the shared seam changed nothing for
HTTP/2.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.h3.qpack import (
    QPACK_STATIC,
    QPACK_STATIC_ENTRIES,
    QPACKDecoder,
    QPACKEncoder,
    QPACKError,
)
from repro.http2.hpack import HPACK_STATIC, HPACKEncoder, StaticTable

#: Printable-ASCII header text without the codec's structural characters.
_text = st.text(
    alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
    min_size=0,
    max_size=24,
)


class TestStaticTable:
    def test_has_99_entries_indexed_from_zero(self):
        assert len(QPACK_STATIC_ENTRIES) == 99
        assert QPACK_STATIC.lookup(0) == (":authority", "")
        assert QPACK_STATIC.lookup(17) == (":method", "GET")
        assert QPACK_STATIC.lookup(98) == ("x-frame-options", "sameorigin")

    def test_out_of_range_lookup(self):
        with pytest.raises(IndexError):
            QPACK_STATIC.lookup(99)

    def test_field_and_name_indexes(self):
        assert QPACK_STATIC.field_index(":status", "200") == 25
        assert QPACK_STATIC.field_index(":status", "999") is None
        assert QPACK_STATIC.name_index(":status") is not None
        assert QPACK_STATIC.name_index("x-no-such-header") is None

    def test_hpack_table_shares_the_interface_at_base_1(self):
        assert isinstance(HPACK_STATIC, StaticTable)
        assert HPACK_STATIC.lookup(1) == (":authority", "")
        assert HPACK_STATIC.lookup(2) == (":method", "GET")
        with pytest.raises(IndexError):
            HPACK_STATIC.lookup(0)


class TestRoundTrips:
    def test_fully_indexed(self):
        headers = [(":method", "GET"), (":scheme", "https"), (":status", "200")]
        wire = QPACKEncoder().encode(headers)
        assert QPACKDecoder().decode(wire) == headers

    def test_name_reference_literal(self):
        headers = [(":status", "999"), ("content-type", "text/x-custom")]
        wire = QPACKEncoder().encode(headers)
        assert QPACKDecoder().decode(wire) == headers

    def test_literal_name(self):
        headers = [("x-custom-header", "v1"), ("x-empty", "")]
        wire = QPACKEncoder().encode(headers)
        assert QPACKDecoder().decode(wire) == headers

    def test_empty_section_is_just_the_prefix(self):
        wire = QPACKEncoder().encode([])
        assert wire == b"\x00\x00"
        assert QPACKDecoder().decode(wire) == []

    @settings(max_examples=60, deadline=None)
    @given(headers=st.lists(st.tuples(_text.filter(bool), _text), max_size=8))
    def test_hypothesis_roundtrip(self, headers):
        wire = QPACKEncoder().encode(headers)
        assert QPACKDecoder().decode(wire) == headers

    @settings(max_examples=30, deadline=None)
    @given(sample=st.lists(st.sampled_from(QPACK_STATIC_ENTRIES), max_size=10))
    def test_hypothesis_static_entries_roundtrip(self, sample):
        wire = QPACKEncoder().encode(sample)
        assert QPACKDecoder().decode(wire) == sample


class TestDecoderRejections:
    def test_nonzero_required_insert_count(self):
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(b"\x01\x00")

    def test_nonzero_base_and_sign_bit(self):
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(b"\x00\x01\xc1")
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(b"\x00\x80")

    def test_truncated_prefix(self):
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(b"")
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(b"\x00")

    def test_dynamic_table_index_rejected(self):
        # '1' indexed with T=0: a dynamic-table reference.
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(b"\x00\x00\x81")

    def test_dynamic_name_reference_rejected(self):
        # '01' literal-with-name-ref with T=0.
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(b"\x00\x00\x41\x00")

    def test_huffman_name_rejected(self):
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(b"\x00\x00\x29abc\x00")

    def test_post_base_rejected(self):
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(b"\x00\x00\x10")

    def test_index_outside_static_table(self):
        wire = bytearray(b"\x00\x00")
        wire.extend(b"\xff\x64")  # indexed static line, index 99+
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(bytes(wire))

    def test_name_literal_overrun(self):
        with pytest.raises(QPACKError):
            QPACKDecoder().decode(b"\x00\x00\x27abc")


class TestHPACKGoldenBytes:
    """Growing hpack.py into a shared seam must not move HTTP/2 bytes."""

    def test_request_header_block_byte_identical(self):
        # The HTTP/2 reference client's standard request headers, as
        # encoded before the StaticTable refactor (captured golden).
        block = HPACKEncoder().encode(
            [
                (":method", "GET"),
                (":path", "/"),
                (":scheme", "http"),
                (":authority", "h2server"),
            ]
        )
        assert block.hex() == "82848601086832736572766572"

    def test_qpack_request_section_stable(self):
        # The HTTP/3 client's standard request headers: pins the wire
        # image the learned http3 model was measured against.
        section = QPACKEncoder().encode(
            [
                (":method", "GET"),
                (":scheme", "https"),
                (":authority", "h3client.example"),
                (":path", "/"),
            ]
        )
        assert section.hex() == "0000d1d750106833636c69656e742e6578616d706c65c1"

"""Tests for passive learning and active-learning bootstrap (section 8)."""

import random

import pytest

from repro.adapter.mealy_sul import MealySUL
from repro.core.trace import IOTrace
from repro.framework import Prognosis
from repro.learn.cache import CachedMembershipOracle, CacheInconsistencyError
from repro.learn.passive import (
    rpni_mealy,
    seed_cache_from_traces,
)
from repro.learn.teacher import SULMembershipOracle


def logged_traces(machine, num=60, max_len=8, seed=5):
    """Random-walk logs from a reference machine."""
    rng = random.Random(seed)
    symbols = list(machine.input_alphabet)
    traces = []
    for _ in range(num):
        word = tuple(
            rng.choice(symbols) for _ in range(rng.randint(1, max_len))
        )
        traces.append(IOTrace(word, machine.run(word)))
    return traces


class TestPrefixTree:
    def test_conflicting_log_rejected(self, toy_machine, ab_alphabet, out_symbols):
        syn, _ = ab_alphabet.symbols
        synack, nil = out_symbols
        good = IOTrace((syn,), (synack,))
        bad = IOTrace((syn,), (nil,))
        with pytest.raises(ValueError):
            rpni_mealy([good, bad], ab_alphabet)


class TestRPNI:
    def test_learns_toy_machine_from_logs(self, toy_machine, ab_alphabet):
        traces = logged_traces(toy_machine, num=80)
        learned = rpni_mealy(traces, ab_alphabet)
        # Rich logs should collapse to (about) the true state count.
        assert learned.num_states <= 2 * toy_machine.num_states
        test_words = [t.inputs for t in logged_traces(toy_machine, num=40, seed=9)]
        assert learned.accuracy(toy_machine, test_words) >= 0.9

    def test_prediction_matches_logs_exactly(self, toy_machine, ab_alphabet):
        traces = logged_traces(toy_machine, num=30)
        learned = rpni_mealy(traces, ab_alphabet)
        for trace in traces:
            predicted = learned.predict(trace.inputs)
            assert predicted == trace.outputs

    def test_unknown_words_predict_none_or_correct(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        traces = [IOTrace((syn,), toy_machine.run((syn,)))]
        learned = rpni_mealy(traces, ab_alphabet)
        long_word = (syn, ack, ack, syn, syn, ack)
        predicted = learned.predict(long_word)
        assert predicted is None or predicted == toy_machine.run(long_word)

    def test_to_complete_fills_gaps(self, toy_machine, ab_alphabet, out_symbols):
        _, nil = out_symbols
        traces = logged_traces(toy_machine, num=10, max_len=3)
        learned = rpni_mealy(traces, ab_alphabet)
        complete = learned.to_complete(sink_output=nil)
        # Complete machines answer everything.
        syn, ack = ab_alphabet.symbols
        assert len(complete.run((syn, ack, syn, ack))) == 4


class TestBootstrap:
    def test_seeding_reduces_sul_queries(self, toy_machine, ab_alphabet):
        # Active learning without logs.
        plain = Prognosis(MealySUL(toy_machine), name="plain")
        plain_report = plain.learn()

        # Active learning with the cache seeded from logs.
        boosted = Prognosis(MealySUL(toy_machine), name="boosted")
        inserted = seed_cache_from_traces(
            boosted.cache_oracle.cache, logged_traces(toy_machine, num=100)
        )
        assert inserted == 100
        boosted_report = boosted.learn()

        assert boosted_report.model.num_states == plain_report.model.num_states
        assert boosted_report.sul_queries < plain_report.sul_queries

    def test_conflicting_log_detected_at_seed_time(
        self, toy_machine, ab_alphabet, out_symbols
    ):
        syn, _ = ab_alphabet.symbols
        synack, nil = out_symbols
        oracle = CachedMembershipOracle(
            SULMembershipOracle(MealySUL(toy_machine))
        )
        seed_cache_from_traces(oracle.cache, [IOTrace((syn,), (synack,))])
        with pytest.raises(CacheInconsistencyError):
            seed_cache_from_traces(oracle.cache, [IOTrace((syn,), (nil,))])

"""Tests for passive learning and active-learning bootstrap (section 8)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.adapter.mealy_sul import MealySUL
from repro.core.alphabet import Alphabet, TCPSymbol, parse_tcp_symbol
from repro.core.mealy import MealyMachine
from repro.core.trace import IOTrace
from repro.framework import Prognosis
from repro.learn.cache import CachedMembershipOracle, CacheInconsistencyError
from repro.learn.passive import (
    TraceConflictError,
    rpni_mealy,
    seed_cache_from_traces,
)
from repro.learn.teacher import SULMembershipOracle

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["ACK", "SYN"])
NIL = parse_tcp_symbol("NIL")
RST = parse_tcp_symbol("RST(?,?,0)")
AB = Alphabet.of([SYN, ACK])


def logged_traces(machine, num=60, max_len=8, seed=5):
    """Random-walk logs from a reference machine."""
    rng = random.Random(seed)
    symbols = list(machine.input_alphabet)
    traces = []
    for _ in range(num):
        word = tuple(
            rng.choice(symbols) for _ in range(rng.randint(1, max_len))
        )
        traces.append(IOTrace(word, machine.run(word)))
    return traces


class TestPrefixTree:
    def test_conflicting_log_rejected(self, toy_machine, ab_alphabet, out_symbols):
        syn, _ = ab_alphabet.symbols
        synack, nil = out_symbols
        good = IOTrace((syn,), (synack,))
        bad = IOTrace((syn,), (nil,))
        with pytest.raises(ValueError):
            rpni_mealy([good, bad], ab_alphabet)


class TestRPNI:
    def test_learns_toy_machine_from_logs(self, toy_machine, ab_alphabet):
        traces = logged_traces(toy_machine, num=80)
        learned = rpni_mealy(traces, ab_alphabet)
        # Rich logs should collapse to (about) the true state count.
        assert learned.num_states <= 2 * toy_machine.num_states
        test_words = [t.inputs for t in logged_traces(toy_machine, num=40, seed=9)]
        assert learned.accuracy(toy_machine, test_words) >= 0.9

    def test_prediction_matches_logs_exactly(self, toy_machine, ab_alphabet):
        traces = logged_traces(toy_machine, num=30)
        learned = rpni_mealy(traces, ab_alphabet)
        for trace in traces:
            predicted = learned.predict(trace.inputs)
            assert predicted == trace.outputs

    def test_unknown_words_predict_none_or_correct(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        traces = [IOTrace((syn,), toy_machine.run((syn,)))]
        learned = rpni_mealy(traces, ab_alphabet)
        long_word = (syn, ack, ack, syn, syn, ack)
        predicted = learned.predict(long_word)
        assert predicted is None or predicted == toy_machine.run(long_word)

    def test_to_complete_fills_gaps(self, toy_machine, ab_alphabet, out_symbols):
        _, nil = out_symbols
        traces = logged_traces(toy_machine, num=10, max_len=3)
        learned = rpni_mealy(traces, ab_alphabet)
        complete = learned.to_complete(sink_output=nil)
        # Complete machines answer everything.
        syn, ack = ab_alphabet.symbols
        assert len(complete.run((syn, ack, syn, ack))) == 4


class TestTraceConflictError:
    def test_carries_structured_context(self):
        traces = [
            IOTrace((SYN, ACK), (SYNACK, NIL)),
            IOTrace((SYN, ACK), (SYNACK, RST)),
        ]
        with pytest.raises(TraceConflictError) as excinfo:
            rpni_mealy(traces, AB)
        error = excinfo.value
        assert isinstance(error, ValueError)  # callers catching ValueError keep working
        assert error.prefix == (SYN, ACK)
        assert error.cached == NIL
        assert error.fresh == RST
        assert error.trace_index == 1
        assert "nondeterministic log" in str(error)
        assert "trace #1" in str(error)

    def test_index_optional_for_unnumbered_sources(self):
        error = TraceConflictError((SYN,), SYNACK, NIL)
        assert error.trace_index is None
        assert "trace #" not in str(error)


def random_reference_machine(seed, max_states=4):
    """A random total Mealy machine over the SYN/ACK alphabet."""
    rng = random.Random(seed)
    states = [f"s{i}" for i in range(rng.randint(1, max_states))]
    outputs = (SYNACK, NIL, RST)
    table = {
        (state, symbol): (rng.choice(states), rng.choice(outputs))
        for state in states
        for symbol in (SYN, ACK)
    }
    return MealyMachine("s0", AB, table)


class TestHardenedFold:
    def test_deep_chain_folds_without_recursion_error(self):
        # Regression: try_fold used to recurse per merged state and caught
        # RecursionError as a merge conflict, so one long session made
        # every fold "fail" and the tree came back unmerged (1501 states).
        deep = IOTrace((SYN,) * 1500, (SYNACK,) * 1500)
        learned = rpni_mealy([deep], AB)
        assert learned.num_states == 1
        assert learned.predict((SYN,) * 2000) == (SYNACK,) * 2000

    def test_deep_merge_is_not_misreported_as_conflict(self):
        # Two long compatible sessions must merge, not be rejected.
        traces = [
            IOTrace((SYN,) * 1200, (SYNACK,) * 1200),
            IOTrace((SYN, ACK) * 600, (SYNACK, NIL) * 600),
        ]
        learned = rpni_mealy(traces, AB)
        assert learned.num_states <= 2
        for trace in traces:
            assert learned.predict(trace.inputs) == trace.outputs

    def test_transitions_never_leak_outside_the_machine(self):
        # Regression for the vacuous `target in red or target in edges`
        # filter: every transition target must be a state of the merged
        # machine, across adversarial random corpora.
        for seed in range(40):
            machine = random_reference_machine(seed)
            traces = logged_traces(machine, num=50, max_len=12, seed=seed)
            learned = rpni_mealy(traces, AB)
            states = learned.states
            for (source, _), (target, _) in learned.transitions.items():
                assert source in states
                assert target in states
            # And the machine stays sound on every logged word.
            for trace in traces:
                assert learned.predict(trace.inputs) == trace.outputs

    def test_fold_is_deterministic(self):
        machine = random_reference_machine(7)
        traces = logged_traces(machine, num=60, seed=3)
        first = rpni_mealy(traces, AB)
        second = rpni_mealy(traces, AB)
        assert first.to_dict() == second.to_dict()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_round_trip_recovers_reference_behaviour(self, seed):
        # Traces sampled from a known machine merge back into a partial
        # machine that agrees with the reference on every sampled word.
        machine = random_reference_machine(seed)
        traces = logged_traces(machine, num=40, max_len=10, seed=seed)
        learned = rpni_mealy(traces, AB)
        for trace in traces:
            assert learned.predict(trace.inputs) == machine.run(trace.inputs)
        states = learned.states
        assert all(
            target in states for (_, _), (target, _) in learned.transitions.items()
        )


class TestPartialMachineEdgeCases:
    def test_empty_trace_set(self):
        learned = rpni_mealy([], AB)
        assert learned.num_states == 1
        assert learned.completeness == 0.0
        assert learned.predict((SYN,)) is None
        assert learned.predict(()) == ()
        assert learned.accuracy(random_reference_machine(0), []) == 0.0
        complete = learned.to_complete(sink_output=NIL)
        assert complete.run((SYN, ACK)) == (NIL, NIL)

    def test_single_symbol_alphabet(self):
        alphabet = Alphabet.of([SYN])
        traces = [IOTrace((SYN, SYN, SYN), (SYNACK, SYNACK, SYNACK))]
        learned = rpni_mealy(traces, alphabet)
        assert learned.num_states == 1
        assert learned.completeness == 1.0
        assert learned.undetermined_cells() == []
        reference = MealyMachine(
            "s0", alphabet, {("s0", SYN): ("s0", SYNACK)}
        )
        assert learned.accuracy(reference, [(SYN,), (SYN, SYN)]) == 1.0

    def test_access_words_and_undetermined_cells(self, toy_machine):
        traces = [IOTrace((SYN, ACK), toy_machine.run((SYN, ACK)))]
        learned = rpni_mealy(traces, AB)
        access = learned.access_words()
        assert access[learned.initial_state] == ()
        for state, word in access.items():
            # Each access word actually reaches its state.
            current = learned.initial_state
            for symbol in word:
                current, _ = learned.transitions[(current, symbol)]
            assert current == state
        cells = learned.undetermined_cells()
        determined = sum(
            1
            for state in access
            for symbol in AB
            if (state, symbol) in learned.transitions
        )
        assert determined + len(cells) == len(access) * len(AB)


class TestBootstrap:
    def test_seeding_reduces_sul_queries(self, toy_machine, ab_alphabet):
        # Active learning without logs.
        plain = Prognosis(MealySUL(toy_machine), name="plain")
        plain_report = plain.learn()

        # Active learning with the cache seeded from logs.
        boosted = Prognosis(MealySUL(toy_machine), name="boosted")
        inserted = seed_cache_from_traces(
            boosted.cache_oracle.cache, logged_traces(toy_machine, num=100)
        )
        assert inserted == 100
        boosted_report = boosted.learn()

        assert boosted_report.model.num_states == plain_report.model.num_states
        assert boosted_report.sul_queries < plain_report.sul_queries

    def test_conflicting_log_detected_at_seed_time(
        self, toy_machine, ab_alphabet, out_symbols
    ):
        syn, _ = ab_alphabet.symbols
        synack, nil = out_symbols
        oracle = CachedMembershipOracle(
            SULMembershipOracle(MealySUL(toy_machine))
        )
        seed_cache_from_traces(oracle.cache, [IOTrace((syn,), (synack,))])
        with pytest.raises(CacheInconsistencyError):
            seed_cache_from_traces(oracle.cache, [IOTrace((syn,), (nil,))])

"""Unit tests for QUIC packet header encoding/decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic.packet import (
    PacketError,
    PacketHeader,
    PacketType,
    decode_packet,
    encode_packet,
    header_bytes_for_aead,
)


def make_header(ptype, **kwargs):
    defaults = dict(
        packet_type=ptype,
        destination_cid=b"\x11" * 8,
        source_cid=b"\x22" * 8,
        packet_number=5,
        payload=b"\xaa" * 24,
    )
    defaults.update(kwargs)
    return PacketHeader(**defaults)


class TestLongHeaders:
    @pytest.mark.parametrize(
        "ptype", [PacketType.INITIAL, PacketType.HANDSHAKE, PacketType.ZERO_RTT]
    )
    def test_roundtrip(self, ptype):
        header = make_header(ptype, token=b"tok" if ptype is PacketType.INITIAL else b"")
        decoded = decode_packet(encode_packet(header))
        assert decoded.packet_type is ptype
        assert decoded.destination_cid == header.destination_cid
        assert decoded.source_cid == header.source_cid
        assert decoded.packet_number == 5
        assert decoded.payload == header.payload
        if ptype is PacketType.INITIAL:
            assert decoded.token == b"tok"

    def test_initial_token_roundtrip(self):
        header = make_header(PacketType.INITIAL, token=b"T" * 40)
        assert decode_packet(encode_packet(header)).token == b"T" * 40

    def test_bad_length_field(self):
        header = make_header(PacketType.HANDSHAKE)
        wire = bytearray(encode_packet(header))
        wire = wire[: len(wire) - 10]  # truncate payload
        with pytest.raises(PacketError):
            decode_packet(bytes(wire))


class TestShortHeader:
    def test_roundtrip(self):
        header = make_header(PacketType.SHORT, source_cid=b"")
        decoded = decode_packet(encode_packet(header), short_cid_length=8)
        assert decoded.packet_type is PacketType.SHORT
        assert decoded.destination_cid == header.destination_cid
        assert decoded.packet_number == 5


class TestRetry:
    def test_roundtrip_with_integrity_tag(self):
        header = make_header(PacketType.RETRY, token=b"retry-token", payload=b"")
        decoded = decode_packet(encode_packet(header))
        assert decoded.packet_type is PacketType.RETRY
        assert decoded.token == b"retry-token"
        assert len(decoded.payload) == 16  # the integrity tag

    def test_short_retry_rejected(self):
        header = make_header(PacketType.RETRY, token=b"", payload=b"")
        wire = encode_packet(header)[:10]
        with pytest.raises(Exception):
            decode_packet(wire)


class TestStatelessReset:
    def test_roundtrip(self):
        header = PacketHeader(
            packet_type=PacketType.STATELESS_RESET,
            destination_cid=b"",
            payload=b"\x0f" * 16,
        )
        decoded = decode_packet(encode_packet(header))
        assert decoded.packet_type is PacketType.STATELESS_RESET
        assert decoded.payload == b"\x0f" * 16


class TestVersionNegotiation:
    def test_roundtrip(self):
        header = PacketHeader(
            packet_type=PacketType.VERSION_NEGOTIATION,
            destination_cid=b"\x01" * 8,
            source_cid=b"\x02" * 8,
            version=0,
            payload=(1).to_bytes(4, "big"),
        )
        decoded = decode_packet(encode_packet(header))
        assert decoded.packet_type is PacketType.VERSION_NEGOTIATION


class TestAeadBinding:
    def test_binding_includes_pn_and_cids(self):
        a = make_header(PacketType.INITIAL)
        b = make_header(PacketType.INITIAL, packet_number=6)
        assert header_bytes_for_aead(a) != header_bytes_for_aead(b)

    def test_empty_datagram_rejected(self):
        with pytest.raises(PacketError):
            decode_packet(b"")


@given(
    pn=st.integers(0, 2**32 - 1),
    dcid=st.binary(min_size=8, max_size=8),
    scid=st.binary(min_size=8, max_size=8),
    payload=st.binary(min_size=1, max_size=64),
)
@settings(max_examples=100, deadline=None)
def test_handshake_header_roundtrip_property(pn, dcid, scid, payload):
    header = PacketHeader(
        packet_type=PacketType.HANDSHAKE,
        destination_cid=dcid,
        source_cid=scid,
        packet_number=pn,
        payload=payload,
    )
    decoded = decode_packet(encode_packet(header))
    assert (decoded.packet_number, decoded.destination_cid, decoded.payload) == (
        pn,
        dcid,
        payload,
    )

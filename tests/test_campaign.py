"""Tests for the Campaign runner: grids, cache sharing, artifacts.

The acceptance test of the spec API redesign lives here: a campaign grid
over (tcp, quic-google) x (ttt, lstar) must learn models byte-identical
to the equivalent direct ``Prognosis`` calls, and cache sharing across
runs of the same SUL must reduce total SUL queries without changing any
model.
"""

import json
from pathlib import Path

import pytest

from repro.adapter.tcp_adapter import TCPAdapterSUL
from repro.campaign import Campaign, RunResult, run_spec
from repro.core.mealy import MealyMachine
from repro.experiments.quic_experiments import make_quic_sul
from repro.framework import Prognosis
from repro.spec import ComponentSpec, ExperimentSpec


class TestGridConstruction:
    def test_grid_is_cartesian_product(self):
        campaign = Campaign.grid(
            targets=("toy", "tcp"), learners=("ttt", "lstar"), seeds=(0, 1)
        )
        assert len(campaign.specs) == 8
        names = [spec.display_name() for spec in campaign.specs]
        assert "toy-ttt-s0" in names
        assert "tcp-lstar-s1" in names
        assert len(set(names)) == 8

    def test_grid_clones_base(self):
        base = ExperimentSpec(
            target="toy",
            equivalence=[ComponentSpec("wmethod", {"extra_states": 2})],
            batch_size=16,
        )
        campaign = Campaign.grid(targets=("toy",), learners=("ttt",), base=base)
        spec = campaign.specs[0]
        assert spec.batch_size == 16
        assert spec.equivalence[0].params == {"extra_states": 2}
        # mutating the cell never touches the template
        spec.equivalence[0].params["extra_states"] = 9
        assert base.equivalence[0].params == {"extra_states": 2}

    def test_specs_accepted_as_dicts(self):
        campaign = Campaign([{"target": "toy"}])
        assert campaign.specs[0].target == "toy"


class TestCampaignExecution:
    def test_failed_run_does_not_sink_campaign(self):
        campaign = Campaign(
            [ExperimentSpec(target="no-such-target"), ExperimentSpec(target="toy")]
        )
        failed, succeeded = campaign.run()
        assert not failed.ok
        assert "no-such-target" in failed.error
        assert succeeded.ok
        assert "FAILED" in failed.summary()

    def test_concurrent_equals_serial(self):
        specs = [
            ExperimentSpec(target="toy", learner=learner, seed=seed)
            for learner in ("ttt", "lstar")
            for seed in (0, 1)
        ]
        serial = Campaign(specs, workers=1, share_cache=False).run()
        concurrent = Campaign(specs, workers=4, share_cache=False).run()
        for a, b in zip(serial, concurrent):
            assert a.model.to_dict() == b.model.to_dict()

    def test_run_spec_single(self):
        result = run_spec({"target": "toy"})
        assert isinstance(result, RunResult)
        assert result.ok
        assert result.report.num_states == 3


class TestCacheSharing:
    def test_sharing_reduces_total_sul_queries(self):
        """Cross-run cache sharing: later runs of the same SUL reuse
        earlier observations, so the campaign total drops."""
        grid = dict(targets=("toy",), learners=("ttt", "lstar"), seeds=(0,))
        shared = Campaign.grid(**grid, share_cache=True).run()
        isolated = Campaign.grid(**grid, share_cache=False).run()
        shared_total = sum(r.report.sul_queries for r in shared)
        isolated_total = sum(r.report.sul_queries for r in isolated)
        assert shared_total < isolated_total
        # the second shared run was answered almost entirely from the store
        assert shared[1].report.sul_queries < isolated[1].report.sul_queries
        # sharing never changes what is learned
        for a, b in zip(shared, isolated):
            assert a.model.to_dict() == b.model.to_dict()

    def test_different_target_params_do_not_share(self):
        specs = [
            ExperimentSpec(target="tcp-handshake", target_params={"seed": 3}),
            ExperimentSpec(target="tcp-handshake", target_params={"seed": 4}),
        ]
        results = Campaign(specs, share_cache=True).run()
        # distinct fingerprints: the second run cannot reuse the first's
        # observations, so it pays full price
        assert results[1].report.sul_queries == results[0].report.sul_queries


class TestArtifacts:
    def test_artifact_files_round_trip(self, tmp_path):
        result = run_spec(
            ExperimentSpec(target="toy", name="toy-run"), output_dir=tmp_path
        )
        directory = Path(result.artifact_dir)
        assert directory.parent == tmp_path
        spec = ExperimentSpec.from_json((directory / "spec.json").read_text())
        assert spec == result.spec
        model = MealyMachine.from_dict(
            json.loads((directory / "model.json").read_text())
        )
        assert model.to_dict() == result.model.to_dict()
        assert (directory / "model.dot").read_text().startswith("digraph")
        report = json.loads((directory / "report.json").read_text())
        assert report["num_states"] == result.report.num_states


class TestPropertyVerdicts:
    """Campaigns evaluate the spec's ``properties`` section and emit
    ``properties.json`` verdict artifacts."""

    def test_spec_without_section_skips_evaluation(self, tmp_path):
        result = run_spec(ExperimentSpec(target="toy"), output_dir=tmp_path)
        assert result.properties is None
        assert not (Path(result.artifact_dir) / "properties.json").exists()

    def test_properties_evaluated_and_written(self, tmp_path):
        from repro.spec import PropertiesSpec

        result = run_spec(
            ExperimentSpec(
                target="toy",
                name="toy-props",
                properties=PropertiesSpec(
                    depth=4, formulas=["G (out == NIL)"]
                ),
            ),
            output_dir=tmp_path,
        )
        assert result.ok
        report = result.properties
        assert report is not None
        assert not report.ok  # the ad-hoc formula is violated
        assert report.verdict("ack-is-ignored").holds
        assert "properties 3/4 hold" in result.summary()
        data = json.loads(
            (Path(result.artifact_dir) / "properties.json").read_text()
        )
        assert data["target"] == "toy-props"
        assert data["counts"]["violated"] == 1
        violated = next(
            v for v in data["verdicts"] if v["verdict"] == "violated"
        )
        assert violated["witness"]["inputs"] == ["SYN(?,?,0)"]

    def test_attack_section_evaluated_and_written(self, tmp_path):
        from repro.spec import AttackSpec

        result = run_spec(
            ExperimentSpec(
                target="tcp",
                name="tcp",
                attack=AttackSpec(attacker="challenge-ack-exhaust"),
            ),
            output_dir=tmp_path,
        )
        assert result.ok
        assert result.attacks is not None
        assert result.attacks.ok
        assert [r.verdict for r in result.attacks.results] == ["CONFIRMED"]
        assert "attacks 1 confirmed/0 unreachable" in result.summary()
        data = json.loads(
            (Path(result.artifact_dir) / "attacks.json").read_text()
        )
        assert data["ok"] is True
        assert data["results"][0]["verdict"] == "CONFIRMED"

    def test_spec_without_attack_section_skips_it(self, tmp_path):
        result = run_spec(ExperimentSpec(target="toy"), output_dir=tmp_path)
        assert result.attacks is None
        assert not (Path(result.artifact_dir) / "attacks.json").exists()

    def test_oracle_kind_sees_the_runs_oracle_table(self):
        from repro.campaign import Campaign
        from repro.spec import PropertiesSpec

        results = Campaign(
            [
                ExperimentSpec(
                    target="http2", properties=PropertiesSpec(depth=2)
                )
            ]
        ).run()
        verdict = results[0].properties.verdict("stream-ids-monotonic")
        assert verdict.holds  # ran (not skipped): the table was available

    def test_property_failure_becomes_error_verdict_not_crash(self):
        from repro.campaign import Campaign
        from repro.spec import PropertiesSpec

        results = Campaign(
            [
                ExperimentSpec(
                    target="toy",
                    properties=PropertiesSpec(formulas=["G (out ===== NIL)"]),
                )
            ]
        ).run()
        result = results[0]
        assert result.ok  # the learning run itself succeeded
        formula_verdict = result.properties.verdicts[-1]
        assert formula_verdict.verdict == "error"
        assert "parse error" in formula_verdict.detail


class TestGridMatchesDirectCalls:
    """The acceptance criterion: campaign runs == direct Prognosis runs."""

    @pytest.fixture(scope="class")
    def grid_results(self):
        campaign = Campaign.grid(
            targets=("tcp", "quic-google"), learners=("ttt", "lstar")
        )
        return {r.spec.display_name(): r for r in campaign.run()}

    @pytest.mark.parametrize("target", ["tcp", "quic-google"])
    @pytest.mark.parametrize("learner", ["ttt", "lstar"])
    def test_byte_identical_models(self, grid_results, target, learner):
        name = f"{target}-{learner}-s0"
        result = grid_results[name]
        assert result.ok, result.error
        sul = (
            TCPAdapterSUL(seed=3)
            if target == "tcp"
            else make_quic_sul("google")
        )
        with Prognosis(sul, learner=learner, name=name) as direct:
            direct_report = direct.learn()
        assert result.model.to_dict() == direct_report.model.to_dict()
        assert result.model.to_dot() == direct_report.model.to_dot()

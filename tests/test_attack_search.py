"""Product-search strategy synthesis: edge cases, minimality, determinism."""

import json

import pytest

from repro.analysis.ltl import parse_ltl
from repro.attack.automata import AttackerAutomaton, Move, resolve_attacker
from repro.attack.search import AttackStrategy, synthesize_attack
from repro.core.alphabet import Alphabet, TCPSymbol, parse_tcp_symbol
from repro.core.mealy import mealy_from_table
from repro.framework import Prognosis
from repro.spec import ExperimentSpec

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["ACK", "SYN"])
NIL = parse_tcp_symbol("NIL")
RST = parse_tcp_symbol("RST(?,?,0)")


def toy_attacker() -> AttackerAutomaton:
    return AttackerAutomaton(
        name="toy",
        description="reach the RST answer",
        initial="start",
        moves=(
            Move("start", "SYN(?,?,0)", outcomes=(("~SYN", "in"), ("*", "start"))),
            Move("in", "SYN(?,?,0)", outcomes=(("~RST", "goal"), ("*", None))),
        ),
        goals=frozenset({"goal"}),
        capabilities=frozenset({"client"}),
        targets=("tcp",),
    )


def toy_model():
    """s0 --SYN/SYN+ACK--> s1; s1 --SYN/RST--> s1; ACK is a NIL no-op."""
    alphabet = Alphabet.of([SYN, ACK])
    return mealy_from_table(
        "s0",
        alphabet,
        [
            ("s0", SYN, SYNACK, "s1"),
            ("s0", ACK, NIL, "s0"),
            ("s1", SYN, RST, "s1"),
            ("s1", ACK, NIL, "s1"),
        ],
        name="toy-tcp",
    )


class TestSynthesis:
    def test_finds_shortest_goal_word(self):
        strategy = synthesize_attack(toy_model(), toy_attacker())
        assert strategy is not None
        assert strategy.word == (SYN, SYN)
        assert strategy.expected_outputs == (SYNACK, RST)
        assert strategy.goal == "goal"
        assert strategy.cost == 2.0

    def test_minimized_is_subsequence_no_longer_than_shortest(self):
        strategy = synthesize_attack(toy_model(), toy_attacker())
        assert len(strategy.minimized) <= len(strategy.word)
        # subsequence check: every minimized symbol appears in order
        it = iter(strategy.word)
        assert all(symbol in it for symbol in strategy.minimized)

    def test_move_costs_steer_dijkstra(self):
        # Make the SYN self-loop on start expensive via a costly detour
        # alternative: a cheap 2-step path must beat a cheap 1-step path
        # whose move costs 10.
        cheap_long = AttackerAutomaton(
            name="costed",
            description="",
            initial="start",
            moves=(
                Move("start", "SYN(?,?,0)", outcomes=(("*", "goal"),), cost=10.0),
                Move("start", "ACK(?,?,0)", outcomes=(("*", "mid"),), cost=1.0),
                Move("mid", "SYN(?,?,0)", outcomes=(("*", "goal"),), cost=1.0),
            ),
            goals=frozenset({"goal"}),
            capabilities=frozenset({"client"}),
            targets=("tcp",),
        )
        strategy = synthesize_attack(toy_model(), cheap_long, minimize=False)
        assert strategy.word == (ACK, SYN)
        assert strategy.cost == 2.0


class TestEdgeCases:
    def test_empty_alphabet_returns_none(self):
        machine = mealy_from_table(
            "s0", Alphabet.of([]), [], name="mute"
        )
        assert synthesize_attack(machine, toy_attacker()) is None

    def test_unreachable_goal_returns_none_not_exception(self):
        # The model never answers RST, so the attacker's second move
        # always prunes: search must exhaust and return None.
        alphabet = Alphabet.of([SYN, ACK])
        model = mealy_from_table(
            "s0",
            alphabet,
            [
                ("s0", SYN, SYNACK, "s0"),
                ("s0", ACK, NIL, "s0"),
            ],
        )
        assert synthesize_attack(model, toy_attacker()) is None

    def test_attacker_symbol_outside_model_alphabet_returns_none(self):
        # The attacker wants to inject RST but the model only speaks SYN:
        # missing symbols are skipped, not crashed on.
        attacker = AttackerAutomaton(
            name="rst-only",
            description="",
            initial="start",
            moves=(Move("start", "RST(?,?,0)", outcomes=(("*", "goal"),)),),
            goals=frozenset({"goal"}),
            capabilities=frozenset({"client"}),
            targets=("tcp",),
        )
        model = mealy_from_table(
            "s0", Alphabet.of([SYN]), [("s0", SYN, NIL, "s0")]
        )
        assert synthesize_attack(model, attacker) is None

    def test_one_state_model(self):
        model = mealy_from_table(
            "only",
            Alphabet.of([SYN]),
            [("only", SYN, RST, "only")],
            name="one-state",
        )
        attacker = AttackerAutomaton(
            name="one-shot",
            description="",
            initial="start",
            moves=(Move("start", "SYN(?,?,0)", outcomes=(("~RST", "goal"),)),),
            goals=frozenset({"goal"}),
            capabilities=frozenset({"client"}),
            targets=("tcp",),
        )
        strategy = synthesize_attack(model, attacker)
        assert strategy is not None
        assert strategy.word == (SYN,)
        assert strategy.minimized == (SYN,)

    def test_initial_goal_yields_empty_strategy(self):
        attacker = AttackerAutomaton(
            name="already-there",
            description="",
            initial="goal",
            moves=(),
            goals=frozenset({"goal"}),
            capabilities=frozenset({"client"}),
            targets=("tcp",),
        )
        strategy = synthesize_attack(toy_model(), attacker)
        assert strategy is not None
        assert strategy.word == ()
        assert strategy.cost == 0.0


class TestObjective:
    def test_objective_must_be_violated(self):
        # The toy strategy's trace ends in RST, violating G (out != RST):
        # the goal path passes the filter.
        violated = parse_ltl("G (out != RST(?,?,0))")
        strategy = synthesize_attack(
            toy_model(), toy_attacker(), objective=violated,
            objective_text="G (out != RST(?,?,0))",
        )
        assert strategy is not None
        assert strategy.objective == "G (out != RST(?,?,0))"

    def test_objective_that_holds_suppresses_the_attack(self):
        # G (out != NIL2) holds on every toy trace, so no goal path
        # violates it: the search must come back empty-handed.
        holds = parse_ltl("G (out != NIL2)")
        assert (
            synthesize_attack(toy_model(), toy_attacker(), objective=holds)
            is None
        )


class TestSerialization:
    def test_strategy_json_round_trip(self):
        strategy = synthesize_attack(toy_model(), toy_attacker())
        data = json.loads(strategy.to_json())
        assert AttackStrategy.from_dict(data) == strategy

    def test_render_mentions_goal_and_witness(self):
        text = synthesize_attack(toy_model(), toy_attacker()).render()
        assert "goal 'goal' reachable" in text
        assert "witness" in text


class TestDeterminism:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_byte_identical_strategy_json(self, executor):
        """Same spec + seed => byte-identical strategy JSON, serial and pooled."""
        attacker = resolve_attacker("challenge-ack-exhaust")
        blobs = []
        for _ in range(2):
            spec = ExperimentSpec(
                target="tcp",
                seed=7,
                name="tcp",
                workers=1 if executor == "serial" else 2,
                executor={"kind": executor},
            )
            with Prognosis.from_spec(spec) as prognosis:
                model = prognosis.learn().model
            blobs.append(synthesize_attack(model, attacker).to_json())
        assert blobs[0] == blobs[1]
        # and identical across executors too: stash per-executor blobs
        TestDeterminism._blobs = getattr(TestDeterminism, "_blobs", {})
        TestDeterminism._blobs[executor] = blobs[0]
        if len(TestDeterminism._blobs) == 2:
            assert len(set(TestDeterminism._blobs.values())) == 1

"""Tests for the component registries: error paths and mutation semantics."""

import pytest

from repro.registry import (
    EQ_ORACLE_REGISTRY,
    LEARNER_REGISTRY,
    MIDDLEWARE_REGISTRY,
    Registry,
    RegistryError,
    SUL_REGISTRY,
    attacks_for,
    load_builtins,
    resolve_targets,
    supported_kwargs,
)


@pytest.fixture
def registry():
    return Registry("widget")


class TestErrorPaths:
    def test_unknown_name_lists_registered_keys(self, registry):
        registry.register("alpha", lambda: "a")
        registry.register("beta", lambda: "b")
        with pytest.raises(RegistryError) as err:
            registry.create("gamma")
        message = str(err.value)
        assert "gamma" in message
        assert "alpha, beta" in message  # sorted, comma-joined
        assert "widget" in message

    def test_empty_registry_message_says_none(self, registry):
        with pytest.raises(RegistryError, match="<none>"):
            registry.get("anything")

    def test_registry_error_is_a_key_error(self, registry):
        with pytest.raises(KeyError):
            registry.get("missing")

    def test_create_forwards_args_and_kwargs(self, registry):
        registry.register("pair", lambda a, b=0: (a, b))
        assert registry.create("pair", 1, b=2) == (1, 2)


class TestMutation:
    def test_reregistration_replaces_factory(self, registry):
        registry.register("name", lambda: "old")
        registry.register("name", lambda: "new")
        assert registry.create("name") == "new"
        assert len(registry) == 1  # replaced, not duplicated

    def test_reregistration_keeps_original_order(self, registry):
        registry.register("first", lambda: 1)
        registry.register("second", lambda: 2)
        registry.register("first", lambda: 10)
        assert registry.names() == ("first", "second")

    def test_unregister_missing_name_is_noop(self, registry):
        registry.unregister("never-registered")  # must not raise
        assert len(registry) == 0

    def test_unregister_removes_entry(self, registry):
        registry.register("gone", lambda: None)
        registry.unregister("gone")
        assert "gone" not in registry
        with pytest.raises(RegistryError):
            registry.get("gone")

    def test_decorator_form_returns_function(self, registry):
        @registry.register("decorated")
        def factory():
            return 42

        assert factory() == 42  # decorator hands the function back
        assert registry.create("decorated") == 42


class TestFamilies:
    def test_groups_by_stem_with_bare_key_first(self, registry):
        for name in ("quic-quiche", "quic-google", "http2", "http2-buggy", "toy"):
            registry.register(name, lambda: None)
        families = registry.families()
        assert families["quic"] == ("quic-google", "quic-quiche")
        assert families["http2"] == ("http2", "http2-buggy")
        assert families["toy"] == ("toy",)

    def test_empty_registry_has_no_families(self, registry):
        assert registry.families() == {}

    def test_builtin_quic_family(self):
        load_builtins()
        assert SUL_REGISTRY.families()["quic"] == (
            "quic-google",
            "quic-mvfst",
            "quic-quiche",
        )

    def test_builtin_tcp_family_includes_the_ablation(self):
        load_builtins()
        assert SUL_REGISTRY.families()["tcp"] == (
            "tcp",
            "tcp-handshake",
            "tcp-no-challenge-ack",
        )


class TestResolveTargets:
    def test_exact_key_resolves_to_itself(self):
        assert resolve_targets(["http2-buggy"]) == ("http2-buggy",)

    def test_family_stem_expands_to_members(self):
        assert resolve_targets(["quic"]) == (
            "quic-google",
            "quic-mvfst",
            "quic-quiche",
        )

    def test_sole_registered_stem_still_expands(self):
        # `repro difftest http3` relies on the bare stem expanding when
        # it is the only argument, even though `http3` is itself a key.
        assert resolve_targets(["http3"]) == ("http3", "http3-buggy")

    def test_registered_stem_beside_others_stays_bare(self):
        assert resolve_targets(["http3", "tcp-handshake"]) == (
            "http3",
            "tcp-handshake",
        )

    def test_exact_mode_suppresses_expansion(self):
        assert resolve_targets(["http3"], exact=True) == ("http3",)

    def test_overlapping_names_dedupe_in_first_mention_order(self):
        assert resolve_targets(["quic", "quic-google"]) == (
            "quic-google",
            "quic-mvfst",
            "quic-quiche",
        )

    def test_unknown_target_lists_targets_and_families(self):
        with pytest.raises(RegistryError) as err:
            resolve_targets(["spdy"])
        message = str(err.value)
        assert "spdy" in message
        assert "http3" in message
        assert "quic" in message  # families offered alongside exact keys

    def test_bare_family_stem_in_exact_mode_is_unknown(self):
        # `quic` is only a stem, never a registered key.
        with pytest.raises(RegistryError):
            resolve_targets(["quic"], exact=True)

    def test_allow_unknown_passes_names_through(self):
        assert resolve_targets(
            ["specs/custom.json"], allow_unknown=True
        ) == ("specs/custom.json",)


class TestBuiltins:
    def test_all_protocol_targets_registered(self):
        load_builtins()
        for target in ("tcp", "quic-google", "http2", "http2-buggy", "toy"):
            assert target in SUL_REGISTRY
        for learner in ("ttt", "lstar"):
            assert learner in LEARNER_REGISTRY
        assert "wmethod" in EQ_ORACLE_REGISTRY
        assert "cache" in MIDDLEWARE_REGISTRY

    def test_supported_kwargs_filters_by_signature(self):
        def factory(seed: int = 0):
            return seed

        params = {"seed": 7, "batch_size": 64}
        assert supported_kwargs(factory, params) == {"seed": 7}

    def test_supported_kwargs_passes_all_to_var_keyword(self):
        def factory(**kwargs):
            return kwargs

        params = {"seed": 7, "batch_size": 64}
        assert supported_kwargs(factory, params) == params


class TestAttacksFor:
    """The per-target attacker discovery the CLI/campaign lean on."""

    def test_family_stem_resolution(self):
        assert attacks_for("tcp") == ("off-path-rst", "challenge-ack-exhaust")
        assert attacks_for("tcp-no-challenge-ack") == attacks_for("tcp")
        assert attacks_for("http2-buggy") == ("rapid-reset",)

    def test_unspoken_target_is_empty_not_an_error(self):
        assert attacks_for("quic-google") == ()
        assert attacks_for("toy") == ()

    def test_unknown_attacker_error_lists_registered_keys(self):
        from repro.attack.automata import ATTACK_REGISTRY

        with pytest.raises(RegistryError) as err:
            ATTACK_REGISTRY.get("quantum-leap")
        message = str(err.value)
        assert "quantum-leap" in message
        assert "challenge-ack-exhaust" in message

"""Tests for register-property checking on extended machines (section 5).

"Packet numbers are always increasing" style properties are undecidable on
register machines in general, so Prognosis tests them over concrete
executions -- here, over synthesized machines and the traces that trained
them.
"""

from repro.analysis.properties import check_register_property
from repro.core.alphabet import Alphabet, parse_tcp_symbol
from repro.core.extended import ConcreteStep
from repro.core.mealy import mealy_from_table
from repro.synth import synthesize

SYN = parse_tcp_symbol("SYN(?,?,0)")
ACK = parse_tcp_symbol("ACK(?,?,0)")
SYNACK = parse_tcp_symbol("ACK+SYN(?,?,0)")
NIL = parse_tcp_symbol("NIL")


def skeleton():
    alphabet = Alphabet.of([SYN, ACK])
    return mealy_from_table(
        "s0",
        alphabet,
        [
            ("s0", SYN, SYNACK, "s1"),
            ("s0", ACK, NIL, "s0"),
            ("s1", SYN, SYNACK, "s1"),
            ("s1", ACK, NIL, "s1"),
        ],
        "pn-skel",
    )


def step(symbol, out, pn_in, pn_out):
    return ConcreteStep(symbol, out, {"pn": pn_in}, {"pn": pn_out})


def increasing_traces():
    return [
        [step(SYN, SYNACK, 0, 0), step(SYN, SYNACK, 1, 1), step(SYN, SYNACK, 2, 2)],
        [step(SYN, SYNACK, 0, 0), step(SYN, SYNACK, 1, 1)],
    ]


class TestRegisterProperties:
    def test_increasing_packet_numbers_hold(self):
        machine = synthesize(
            skeleton(), increasing_traces(), register_names=("r",)
        ).machine

        def increasing(steps, predictions):
            values = [p["pn"] for p in predictions if "pn" in p]
            return values == sorted(values) and len(set(values)) == len(values)

        violation = check_register_property(
            machine, increasing_traces(), increasing, "pn always increasing"
        )
        assert violation is None

    def test_stuck_counter_detected(self):
        stuck = [
            [step(SYN, SYNACK, 0, 7), step(SYN, SYNACK, 1, 7), step(SYN, SYNACK, 2, 7)]
        ]
        machine = synthesize(skeleton(), stuck, register_names=("r",)).machine

        def increasing(steps, predictions):
            values = [p["pn"] for p in predictions if "pn" in p]
            return values == sorted(set(values))

        violation = check_register_property(
            machine, stuck, increasing, "pn always increasing"
        )
        assert violation is not None
        assert violation.description == "pn always increasing"

    def test_traces_outside_model_are_skipped(self):
        machine = synthesize(
            skeleton(), increasing_traces(), register_names=("r",)
        ).machine
        foreign = [
            [
                ConcreteStep(SYN, SYNACK, {}, {"unrelated": 1}),
            ]
        ]

        def always_false(steps, predictions):
            return False

        violation = check_register_property(machine, foreign, always_false)
        assert violation is not None  # executes fine, predicate fails

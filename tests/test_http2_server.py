"""Tests for the in-process HTTP/2 server driven by the reference client."""

import pytest

from repro.http2 import (
    ConnectionState,
    ErrorCode,
    FrameType,
    HTTP2Client,
    HTTP2Server,
    HTTP2ServerConfig,
)
from repro.http2.frames import parse_goaway, parse_rst_stream, parse_settings
from repro.netsim import SimulatedNetwork


@pytest.fixture
def pair():
    network = SimulatedNetwork(seed=1)
    server = HTTP2Server(network)
    client = HTTP2Client(network, server.endpoint.address)
    yield server, client
    client.close()
    server.close()


def kinds(frames):
    return [FrameType(f.frame_type).name for f in frames]


class TestHandshake:
    def test_settings_handshake(self, pair):
        server, client = pair
        _, responses = client.exchange("SETTINGS")
        assert kinds(responses) == ["SETTINGS", "SETTINGS"]
        assert not responses[0].has_flag(0x1)
        assert responses[1].has_flag(0x1)
        assert server.state is ConnectionState.READY
        assert parse_settings(responses[0])  # server's parameters announced

    def test_first_frame_must_be_settings(self, pair):
        server, client = pair
        _, responses = client.exchange("PING")
        assert kinds(responses) == ["GOAWAY"]
        assert parse_goaway(responses[0])[1] == ErrorCode.PROTOCOL_ERROR
        assert server.state is ConnectionState.CLOSED

    def test_garbage_preface_draws_goaway(self, pair):
        server, client = pair
        client.preface_sent = True  # suppress the preface: raw frame bytes
        _, responses = client.exchange("SETTINGS")
        assert kinds(responses) == ["GOAWAY"]


class TestRequests:
    def complete_handshake(self, client):
        client.exchange("SETTINGS")

    def test_complete_request_gets_response(self, pair):
        server, client = pair
        self.complete_handshake(client)
        _, responses = client.exchange("HEADERS", ("END_HEADERS", "END_STREAM"))
        assert kinds(responses) == ["HEADERS", "DATA"]
        assert responses[1].end_stream
        assert responses[1].payload == server.config.response_body
        assert client.last_response_headers[0] == (":status", "200")
        assert server.last_request_headers[0] == (":method", "GET")
        assert server.stats.requests_served == 1

    def test_open_request_then_data(self, pair):
        server, client = pair
        self.complete_handshake(client)
        _, responses = client.exchange("HEADERS", ("END_HEADERS",))
        assert responses == []
        _, responses = client.exchange("DATA", ("END_STREAM",))
        assert kinds(responses) == ["HEADERS", "DATA"]

    def test_stream_ids_increase_per_request(self, pair):
        server, client = pair
        self.complete_handshake(client)
        first, _ = client.exchange("HEADERS", ("END_HEADERS", "END_STREAM"))
        second, _ = client.exchange("HEADERS", ("END_HEADERS", "END_STREAM"))
        assert (first.stream_id, second.stream_id) == (1, 3)
        assert server.max_client_stream == 3

    def test_trailers_without_end_stream_rst(self, pair):
        server, client = pair
        self.complete_handshake(client)
        client.exchange("HEADERS", ("END_HEADERS",))
        _, responses = client.exchange("HEADERS", ("END_HEADERS",))
        assert kinds(responses) == ["RST_STREAM"]
        assert parse_rst_stream(responses[0]) == ErrorCode.PROTOCOL_ERROR
        assert server.state is ConnectionState.READY  # stream error only

    def test_rst_cancels_open_stream_silently(self, pair):
        server, client = pair
        self.complete_handshake(client)
        client.exchange("HEADERS", ("END_HEADERS",))
        _, responses = client.exchange("RST_STREAM")
        assert responses == []
        assert server.streams == {}


class TestConnectionErrors:
    def handshake(self, client):
        client.exchange("SETTINGS")

    def test_data_on_idle_stream(self, pair):
        server, client = pair
        self.handshake(client)
        _, responses = client.exchange("DATA", ("END_STREAM",))
        assert parse_goaway(responses[0])[1] == ErrorCode.PROTOCOL_ERROR

    def test_data_on_closed_stream(self, pair):
        server, client = pair
        self.handshake(client)
        client.exchange("HEADERS", ("END_HEADERS", "END_STREAM"))
        _, responses = client.exchange("DATA", ("END_STREAM",))
        assert parse_goaway(responses[0])[1] == ErrorCode.STREAM_CLOSED

    def test_closed_connection_ignores_everything(self, pair):
        server, client = pair
        self.handshake(client)
        client.exchange("GOAWAY")
        assert server.state is ConnectionState.CLOSED
        for kind in ("PING", "SETTINGS", "HEADERS"):
            flags = ("END_HEADERS", "END_STREAM") if kind == "HEADERS" else ()
            _, responses = client.exchange(kind, flags)
            assert responses == []


class TestClosedStreamRst:
    """The seeded quirk: RST_STREAM in the closed state (RFC 9113 5.1)."""

    def closed_stream(self, client):
        client.exchange("SETTINGS")
        client.exchange("HEADERS", ("END_HEADERS", "END_STREAM"))

    def test_conformant_server_ignores(self, pair):
        server, client = pair
        self.closed_stream(client)
        _, responses = client.exchange("RST_STREAM")
        assert responses == []
        assert server.state is ConnectionState.READY

    def test_buggy_server_escalates(self):
        network = SimulatedNetwork(seed=1)
        server = HTTP2Server(
            network, config=HTTP2ServerConfig(rst_on_closed_bug=True)
        )
        client = HTTP2Client(network, server.endpoint.address)
        try:
            self.closed_stream(client)
            _, responses = client.exchange("RST_STREAM")
            assert kinds(responses) == ["GOAWAY"]
            assert parse_goaway(responses[0])[1] == ErrorCode.STREAM_CLOSED
            assert server.state is ConnectionState.CLOSED
        finally:
            client.close()
            server.close()


class TestUndecodableHeaders:
    def test_bad_header_block_draws_compression_error(self, pair):
        """An incremental-indexing literal (needs a dynamic table) must be
        answered with GOAWAY COMPRESSION_ERROR, not crash the handler."""
        from repro.http2.frames import headers_frame

        server, client = pair
        client.exchange("SETTINGS")
        block = b"\x40\x01a\x01b"  # '01' pattern: incremental indexing
        client.endpoint.send(
            headers_frame(1, block, end_stream=True).encode(), client.server_address
        )
        client._network.run()
        responses = []
        for datagram in client.endpoint.receive_all():
            responses.extend(client._frames.feed(datagram.payload))
        assert kinds(responses) == ["GOAWAY"]
        assert parse_goaway(responses[0])[1] == ErrorCode.COMPRESSION_ERROR
        assert server.state is ConnectionState.CLOSED
        assert server.streams == {}


class TestReset:
    def test_reset_restores_fresh_connection(self, pair):
        server, client = pair
        client.exchange("SETTINGS")
        client.exchange("HEADERS", ("END_HEADERS", "END_STREAM"))
        server.reset()
        client.reset()
        _, responses = client.exchange("SETTINGS")
        assert kinds(responses) == ["SETTINGS", "SETTINGS"]
        first, _ = client.exchange("HEADERS", ("END_HEADERS", "END_STREAM"))
        assert first.stream_id == 1  # stream ids restart with the connection

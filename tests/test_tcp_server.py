"""Behavioural tests for the Linux-like TCP server."""

import pytest

from repro.netsim import SimulatedNetwork
from repro.tcp.client import TCPClient
from repro.tcp.server import TCPServer, TCPServerConfig, TCPState


@pytest.fixture
def stack():
    network = SimulatedNetwork()
    server = TCPServer(network)
    client = TCPClient(network, server.endpoint.address)
    return network, server, client


def flags_of(responses):
    return [r.flag_string() for r in responses]


class TestListen:
    def test_syn_gets_synack(self, stack):
        _, server, client = stack
        _, responses = client.exchange(("SYN",), 0)
        assert flags_of(responses) == ["ACK+SYN"]
        assert server.state is TCPState.SYN_RCVD

    def test_stray_ack_gets_rst(self, stack):
        _, server, client = stack
        _, responses = client.exchange(("ACK",), 0)
        assert flags_of(responses) == ["RST"]
        assert server.state is TCPState.LISTEN

    def test_rst_ignored(self, stack):
        _, server, client = stack
        _, responses = client.exchange(("RST",), 0)
        assert responses == []

    def test_synack_numbers(self, stack):
        _, server, client = stack
        sent, responses = client.exchange(("SYN",), 0)
        assert responses[0].ack_number == (sent.seq_number + 1) % 2**32


class TestHandshake:
    def test_three_way_handshake(self, stack):
        _, server, client = stack
        client.exchange(("SYN",), 0)
        _, responses = client.exchange(("ACK",), 0)
        assert responses == []
        assert server.state is TCPState.ESTABLISHED

    def test_data_completes_handshake(self, stack):
        _, server, client = stack
        client.exchange(("SYN",), 0)
        _, responses = client.exchange(("ACK", "PSH"), 1)
        assert flags_of(responses) == ["ACK"]
        assert server.state is TCPState.ESTABLISHED

    def test_second_syn_aborts(self, stack):
        _, server, client = stack
        client.exchange(("SYN",), 0)
        _, responses = client.exchange(("SYN",), 0)
        assert flags_of(responses) == ["ACK+RST"]
        assert server.state is TCPState.DEAD

    def test_fin_during_syn_rcvd(self, stack):
        _, server, client = stack
        client.exchange(("SYN",), 0)
        _, responses = client.exchange(("FIN", "ACK"), 0)
        assert flags_of(responses) == ["ACK+FIN"]
        assert server.state is TCPState.LAST_ACK


class TestEstablished:
    def _establish(self, client):
        client.exchange(("SYN",), 0)
        client.exchange(("ACK",), 0)

    def test_data_is_acked_with_correct_number(self, stack):
        _, server, client = stack
        self._establish(client)
        sent, responses = client.exchange(("ACK", "PSH"), 1)
        assert flags_of(responses) == ["ACK"]
        assert responses[0].ack_number == (sent.seq_number + 1) % 2**32

    def test_challenge_ack_rate_limited(self, stack):
        _, server, client = stack
        self._establish(client)
        _, first = client.exchange(("SYN",), 0)
        assert flags_of(first) == ["ACK"]  # challenge ACK
        _, second = client.exchange(("SYN",), 0)
        assert second == []  # rate limiter: silence
        assert server.state is TCPState.ESTABLISHED_NO_CREDIT

    def test_data_replenishes_challenge_credit(self, stack):
        _, server, client = stack
        self._establish(client)
        client.exchange(("SYN",), 0)
        client.exchange(("ACK", "PSH"), 1)
        _, again = client.exchange(("SYN",), 0)
        assert flags_of(again) == ["ACK"]

    def test_rate_limit_can_be_disabled(self):
        network = SimulatedNetwork()
        config = TCPServerConfig(challenge_ack_rate_limit=False)
        server = TCPServer(network, config=config)
        client = TCPClient(network, server.endpoint.address)
        client.exchange(("SYN",), 0)
        client.exchange(("ACK",), 0)
        for _ in range(3):
            _, responses = client.exchange(("SYN",), 0)
            assert flags_of(responses) == ["ACK"]

    def test_rst_kills_connection(self, stack):
        _, server, client = stack
        self._establish(client)
        _, responses = client.exchange(("RST",), 0)
        assert responses == []
        assert server.state is TCPState.DEAD

    def test_close_sequence(self, stack):
        _, server, client = stack
        self._establish(client)
        _, fin_response = client.exchange(("FIN", "ACK"), 0)
        assert flags_of(fin_response) == ["ACK+FIN"]
        _, last = client.exchange(("ACK",), 0)
        assert last == []
        assert server.state is TCPState.DEAD


class TestDead:
    def test_everything_ignored_after_death(self, stack):
        _, server, client = stack
        client.exchange(("SYN",), 0)
        client.exchange(("RST",), 0)
        for flags, plen in [(("SYN",), 0), (("ACK",), 0), (("ACK", "PSH"), 1)]:
            _, responses = client.exchange(flags, plen)
            assert responses == []


class TestReset:
    def test_reset_returns_to_listen_with_fresh_isn(self, stack):
        _, server, client = stack
        client.exchange(("SYN",), 0)
        first_iss = server.snd_nxt
        server.reset()
        client.reset()
        assert server.state is TCPState.LISTEN
        client.exchange(("SYN",), 0)
        assert server.snd_nxt != first_iss

    def test_corrupted_segment_dropped(self, stack):
        network, server, client = stack
        segment = client.build_segment(("SYN",), 0)
        wire = bytearray(segment.encode("client", "server"))
        wire[7] ^= 0xFF
        client.endpoint.send(bytes(wire), server.endpoint.address)
        network.run()
        assert server.state is TCPState.LISTEN
        assert server.segments_received == 0

"""Tests for the QUIC property suite over learned models."""


from repro.analysis.property_api import Verdict, check_properties
from repro.analysis.quic_properties import (
    DESIGN_PROBES,
    STANDARD_PROPERTIES,
    client_done_draws_close,
    close_is_terminal_for_data,
    handshake_done_only_after_finished,
    no_server_flight_without_hello,
    single_packet_close,
)
from repro.core.alphabet import parse_quic_output, parse_quic_symbol
from repro.core.trace import IOTrace
from repro.registry import resolve_property_suite

CH = parse_quic_symbol("INITIAL(?,?)[CRYPTO]")
HC = parse_quic_symbol("HANDSHAKE(?,?)[ACK,CRYPTO]")
SHD = parse_quic_symbol("SHORT(?,?)[ACK,HANDSHAKE_DONE]")
EMPTY = parse_quic_output("{}")
FLIGHT = parse_quic_output(
    "{HANDSHAKE(?,?)[CRYPTO],HANDSHAKE(?,?)[CRYPTO],INITIAL(?,?)[ACK,CRYPTO]}"
)
DONE = parse_quic_output("{SHORT(?,?)[CRYPTO,HANDSHAKE_DONE,STREAM]}")
CLOSE = parse_quic_output("{SHORT(?,?)[CONNECTION_CLOSE]}")
LATE_STREAM = parse_quic_output("{SHORT(?,?)[ACK,STREAM]}")


class TestPredicates:
    def test_done_after_finished_holds(self):
        trace = IOTrace((CH, HC), (FLIGHT, DONE))
        assert handshake_done_only_after_finished(trace)

    def test_done_before_finished_violates(self):
        trace = IOTrace((CH,), (DONE,))
        assert not handshake_done_only_after_finished(trace)

    def test_flight_requires_hello(self):
        assert not no_server_flight_without_hello(IOTrace((HC,), (FLIGHT,)))
        assert no_server_flight_without_hello(IOTrace((CH,), (FLIGHT,)))

    def test_close_terminal_for_data(self):
        ok = IOTrace((CH, HC, SHD), (FLIGHT, DONE, CLOSE))
        assert close_is_terminal_for_data(ok)
        bad = IOTrace((CH, SHD, HC), (FLIGHT, CLOSE, LATE_STREAM))
        assert not close_is_terminal_for_data(bad)

    def test_client_done_draws_close(self):
        answered = IOTrace((CH, HC, SHD), (FLIGHT, DONE, CLOSE))
        assert client_done_draws_close(answered)
        ignored = IOTrace((CH, HC, SHD), (FLIGHT, DONE, EMPTY))
        assert not client_done_draws_close(ignored)

    def test_client_done_ok_when_already_closed(self):
        trace = IOTrace((CH, HC, SHD, SHD), (FLIGHT, DONE, CLOSE, EMPTY))
        assert client_done_draws_close(trace)

    def test_single_packet_close_probe(self):
        bundled = parse_quic_output(
            "{HANDSHAKE(?,?)[CONNECTION_CLOSE],INITIAL(?,?)[ACK,CONNECTION_CLOSE]}"
        )
        assert not single_packet_close(IOTrace((CH,), (bundled,)))
        assert single_packet_close(IOTrace((CH,), (CLOSE,)))


class TestSuiteDefinition:
    def test_registered_suite_is_standard_plus_probes(self):
        suite = resolve_property_suite("quic-google")
        assert suite == STANDARD_PROPERTIES + DESIGN_PROBES

    def test_probe_is_tagged(self):
        assert all(p.is_probe for p in DESIGN_PROBES)
        assert not any(p.is_probe for p in STANDARD_PROPERTIES)


class TestSuiteOnLearnedModels:
    def test_standard_properties_hold_on_quiche(self):
        from repro.experiments import learn_quic

        model = learn_quic("quiche").model
        report = check_properties(model, STANDARD_PROPERTIES, depth=4)
        assert all(v.holds for v in report), report.render()

    def test_design_probe_distinguishes_implementations(self):
        """The probe flags a design difference (not a bug): Google
        bundles closes, Quiche does not -- and probe violations carry a
        minimized witness without failing the report."""
        from repro.experiments import learn_quic

        quiche = learn_quic("quiche").model
        google = learn_quic("google").model
        quiche_probe = check_properties(quiche, DESIGN_PROBES, depth=3)
        google_probe = check_properties(google, DESIGN_PROBES, depth=3)
        assert quiche_probe.verdict("single-packet-close").holds
        google_verdict = google_probe.verdict("single-packet-close")
        assert google_verdict.verdict == Verdict.VIOLATED
        assert google_verdict.minimized
        # Minimal repro: a ClientHello, then its duplicate drawing the
        # multi-level bundled close.
        assert len(google_verdict.witness) == 2
        assert google_probe.ok  # a probe difference is not a failure

"""Frontier fuzzer: determinism, budget accounting, divergence detection."""

import json

import pytest

from repro.adapter.mealy_sul import MealySUL
from repro.attack.fuzzer import fuzz_frontier
from repro.core.alphabet import Alphabet, TCPSymbol, parse_tcp_symbol
from repro.core.mealy import mealy_from_table
from repro.framework import Prognosis
from repro.learn.cache import CachedMembershipOracle
from repro.learn.teacher import SULMembershipOracle
from repro.spec import ExperimentSpec

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["ACK", "SYN"])
NIL = parse_tcp_symbol("NIL")
RST = parse_tcp_symbol("RST(?,?,0)")

ALPHABET = Alphabet.of([SYN, ACK])


def machine(established_syn_output):
    return mealy_from_table(
        "s0",
        ALPHABET,
        [
            ("s0", SYN, SYNACK, "s1"),
            ("s0", ACK, NIL, "s0"),
            ("s1", SYN, established_syn_output, "s1"),
            ("s1", ACK, NIL, "s1"),
        ],
    )


def oracle_over(m) -> CachedMembershipOracle:
    return CachedMembershipOracle(SULMembershipOracle(MealySUL(m)))


class TestBudgetAndFrontier:
    def test_budget_caps_words_sent(self):
        model = machine(RST)
        report = fuzz_frontier(model, oracle_over(model), budget=10, seed=1)
        assert report.words_sent == 10
        assert report.budget == 10
        assert report.frontier_prefixes == model.num_states

    def test_zero_budget_sends_nothing(self):
        model = machine(RST)
        report = fuzz_frontier(model, oracle_over(model), budget=0, seed=1)
        assert report.words_sent == 0
        assert report.ok

    def test_empty_alphabet_sends_nothing(self):
        mute = mealy_from_table("s0", Alphabet.of([]), [])
        report = fuzz_frontier(mute, oracle_over(mute), budget=50, seed=1)
        assert report.words_sent == 0

    def test_small_word_space_exhausts_below_budget(self):
        # 1 state x 1 symbol x max_suffix 1 has exactly one candidate
        # word: the generator must stop, not spin forever.
        one = mealy_from_table("s0", Alphabet.of([SYN]), [("s0", SYN, NIL, "s0")])
        report = fuzz_frontier(
            one, oracle_over(one), budget=50, seed=1, max_suffix=1
        )
        assert report.words_sent == 1


class TestDivergences:
    def test_faithful_sul_yields_no_divergences(self):
        model = machine(RST)
        report = fuzz_frontier(model, oracle_over(model), budget=40, seed=3)
        assert report.ok
        assert report.divergences == []

    def test_lying_model_caught_at_the_frontier(self):
        # The model claims established SYNs draw RST; the live system
        # answers NIL.  Every fuzz word crossing that cell diverges.
        model = machine(RST)
        live = oracle_over(machine(NIL))
        report = fuzz_frontier(model, live, budget=40, seed=3)
        assert not report.ok
        divergence = report.divergences[0]
        assert RST in divergence.expected
        assert RST not in divergence.observed
        assert divergence.trace.outputs == divergence.observed
        assert "live answered" in divergence.render()


class TestDeterminism:
    def test_same_seed_same_report(self):
        model = machine(RST)
        first = fuzz_frontier(model, oracle_over(model), budget=30, seed=11)
        second = fuzz_frontier(model, oracle_over(model), budget=30, seed=11)
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())

    def test_different_seed_different_words(self):
        model = machine(RST)
        first = fuzz_frontier(model, oracle_over(model), budget=30, seed=1)
        second = fuzz_frontier(model, oracle_over(model), budget=30, seed=2)
        assert json.dumps(first.to_dict()) != json.dumps(second.to_dict())

    @pytest.mark.parametrize(
        "executor,workers", [("serial", 1), ("thread", 2), ("process", 2)]
    )
    def test_identical_across_executors(self, executor, workers):
        """Fixed seed => byte-identical fuzz report on every backend."""
        spec = ExperimentSpec(
            target="tcp",
            seed=7,
            name="tcp",
            workers=workers,
            executor={"kind": executor, "workers": workers},
        )
        with Prognosis.from_spec(spec) as prognosis:
            model = prognosis.learn().model
            blob = json.dumps(
                fuzz_frontier(
                    model, prognosis.oracle, budget=50, seed=7
                ).to_dict(),
                sort_keys=True,
            )
        TestDeterminism._blobs = getattr(TestDeterminism, "_blobs", {})
        TestDeterminism._blobs[executor] = blob
        assert len(set(TestDeterminism._blobs.values())) == 1

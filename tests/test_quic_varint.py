"""Unit and property tests for QUIC varints and the Buffer helper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic.varint import (
    Buffer,
    VARINT_MAX,
    VarintError,
    decode_varint,
    encode_varint,
    varint_length,
)


class TestVarint:
    def test_known_encodings(self):
        # Examples from RFC 9000 appendix A.1.
        assert encode_varint(151_288_809_941_952_652) == bytes.fromhex(
            "c2197c5eff14e88c"
        )
        assert encode_varint(494_878_333) == bytes.fromhex("9d7f3e7d")
        assert encode_varint(15_293) == bytes.fromhex("7bbd")
        assert encode_varint(37) == bytes.fromhex("25")

    def test_lengths(self):
        assert varint_length(63) == 1
        assert varint_length(64) == 2
        assert varint_length(16383) == 2
        assert varint_length(16384) == 4

    def test_out_of_range(self):
        with pytest.raises(VarintError):
            encode_varint(-1)
        with pytest.raises(VarintError):
            encode_varint(VARINT_MAX + 1)

    def test_truncated(self):
        with pytest.raises(VarintError):
            decode_varint(b"")
        with pytest.raises(VarintError):
            decode_varint(bytes.fromhex("c2197c"))

    def test_decode_offset(self):
        data = b"\xff" + encode_varint(37)
        value, end = decode_varint(data, offset=1)
        assert value == 37
        assert end == 2


@given(st.integers(min_value=0, max_value=VARINT_MAX))
@settings(max_examples=300, deadline=None)
def test_varint_roundtrip(value):
    encoded = encode_varint(value)
    decoded, end = decode_varint(encoded)
    assert decoded == value
    assert end == len(encoded)
    assert len(encoded) == varint_length(value)


class TestBuffer:
    def test_push_pull_roundtrip(self):
        buf = Buffer()
        buf.push_uint8(7).push_uint(513, 2).push_varint(99).push_varint_bytes(b"abc")
        reader = Buffer(buf.getvalue())
        assert reader.pull_uint8() == 7
        assert reader.pull_uint(2) == 513
        assert reader.pull_varint() == 99
        assert reader.pull_varint_bytes() == b"abc"
        assert reader.eof

    def test_underrun(self):
        with pytest.raises(VarintError):
            Buffer(b"ab").pull_bytes(3)

    def test_remaining(self):
        reader = Buffer(b"abcd")
        reader.pull_bytes(1)
        assert reader.remaining == 3

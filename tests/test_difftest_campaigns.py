"""Acceptance tests for the differential conformance campaigns.

These drive the real protocol workloads end to end:

* the three-implementation QUIC matrix (google x mvfst x quiche) with
  mvfst's nondeterminism recorded as ``error`` cells and every
  off-diagonal divergence carrying a minimized, replay-validated witness;
* the HTTP/2 pair, where the RST_STREAM-on-closed-stream quirk must be
  flagged with a witness no longer than the shortest difference an
  exhaustive product-machine search finds.
"""

import pytest

from repro.adapter.quic_adapter import build_quic_sul
from repro.analysis.difftest import (
    VERDICT_DIVERGE,
    VERDICT_ERROR,
    VERDICT_SELF,
)
from repro.analysis.equivalence import find_difference
from repro.experiments import (
    difftest_http2,
    difftest_http3,
    difftest_quic,
    difftest_tcp,
)
from repro.registry import SUL_REGISTRY, load_builtins


@pytest.fixture(scope="module")
def quic_matrix():
    return difftest_quic()


@pytest.fixture(scope="module")
def http2_matrix():
    return difftest_http2()


class TestQUICFamilyMatrix:
    def test_family_discovery_names_three_implementations(self):
        load_builtins()
        assert SUL_REGISTRY.families()["quic"] == (
            "quic-google",
            "quic-mvfst",
            "quic-quiche",
        )

    def test_matrix_is_three_by_three(self, quic_matrix):
        matrix = quic_matrix.matrix
        assert matrix.targets == ["quic-google", "quic-mvfst", "quic-quiche"]
        assert len(matrix.cells) == 9

    def test_mvfst_row_and_column_are_errors(self, quic_matrix):
        matrix = quic_matrix.matrix
        for other in matrix.targets:
            assert matrix.cell("quic-mvfst", other).verdict == VERDICT_ERROR
            assert matrix.cell(other, "quic-mvfst").verdict == VERDICT_ERROR
        assert "quic-mvfst" in matrix.cell("quic-google", "quic-mvfst").error

    def test_diagonal_is_self_conformant(self, quic_matrix):
        matrix = quic_matrix.matrix
        for name in ("quic-google", "quic-quiche"):
            assert matrix.cell(name, name).verdict == VERDICT_SELF

    def test_google_vs_quiche_diverges_both_ways(self, quic_matrix):
        matrix = quic_matrix.matrix
        assert matrix.cell("quic-google", "quic-quiche").verdict == VERDICT_DIVERGE
        assert matrix.cell("quic-quiche", "quic-google").verdict == VERDICT_DIVERGE

    def test_divergences_carry_minimized_replayable_witnesses(self, quic_matrix):
        """Every off-diagonal divergence's witness, replayed against both
        implementations, reproduces the differing outputs."""
        divergent = quic_matrix.matrix.divergent_pairs()
        assert divergent
        for cell in divergent:
            assert cell.witness is not None
            assert cell.witness_validated
            row_sul = build_quic_sul(cell.row.removeprefix("quic-"))
            col_sul = build_quic_sul(cell.col.removeprefix("quic-"))
            try:
                row_outputs = tuple(row_sul.query(cell.witness))
                col_outputs = tuple(col_sul.query(cell.witness))
            finally:
                row_sul.close()
                col_sul.close()
            assert row_outputs == cell.witness_row_outputs
            assert col_outputs == cell.witness_col_outputs
            assert row_outputs != col_outputs

    def test_witnesses_are_shortest(self, quic_matrix):
        """No witness is longer than the exhaustive product-machine search's
        shortest difference between the two learned models."""
        models = {run.spec.name: run.model for run in quic_matrix.runs if run.ok}
        for cell in quic_matrix.matrix.divergent_pairs():
            shortest = find_difference(models[cell.row], models[cell.col])
            assert shortest is not None
            assert len(cell.witness) <= len(shortest)

    def test_model_diff_artifacts_for_learned_pairs(self, quic_matrix):
        assert ("quic-google", "quic-quiche") in quic_matrix.diffs
        diff = quic_matrix.diffs[("quic-google", "quic-quiche")]
        assert not diff.equivalent
        assert diff.size_gap == 4  # 12 vs 8 states (paper section 6.2.2)

    def test_summary_counts(self, quic_matrix):
        assert "2/3 models learned" in quic_matrix.summary()


class TestHTTP2QuirkMatrix:
    def test_quirk_flagged_with_shortest_witness(self, http2_matrix):
        """The RST_STREAM-on-closed quirk divergence carries a witness no
        longer than the one exhaustive search over the learned product
        machine finds."""
        cell = http2_matrix.matrix.cell("http2", "http2-buggy")
        assert cell.verdict == VERDICT_DIVERGE
        assert cell.witness is not None
        assert cell.witness_validated
        models = {run.spec.name: run.model for run in http2_matrix.runs}
        exhaustive = find_difference(models["http2"], models["http2-buggy"])
        assert exhaustive is not None
        assert len(cell.witness) <= len(exhaustive)

    def test_witness_exercises_rst_stream(self, http2_matrix):
        cell = http2_matrix.matrix.cell("http2", "http2-buggy")
        assert any("RST_STREAM" in str(symbol) for symbol in cell.witness)

    def test_diagonals_self_conformant(self, http2_matrix):
        assert http2_matrix.matrix.cell("http2", "http2").verdict == VERDICT_SELF
        assert (
            http2_matrix.matrix.cell("http2-buggy", "http2-buggy").verdict
            == VERDICT_SELF
        )

    def test_size_gap_visible_in_diff(self, http2_matrix):
        diff = http2_matrix.diffs[("http2", "http2-buggy")]
        assert diff.states_a == 5
        assert diff.states_b == 4

    def test_member_property_suites_run_alongside_cross_replay(
        self, http2_matrix
    ):
        """Each family member's registered suite produces verdicts: the
        conformant server satisfies everything, the buggy one violates
        ``rst-after-response-tolerated`` with a minimized witness."""
        reports = {
            run.spec.name: run.properties for run in http2_matrix.runs
        }
        assert reports["http2"] is not None and reports["http2"].ok
        buggy = reports["http2-buggy"]
        verdict = buggy.verdict("rst-after-response-tolerated")
        assert verdict.violated
        assert verdict.minimized
        assert not buggy.ok
        assert "http2-buggy properties:" in http2_matrix.render()
        assert "1 members violate properties" in http2_matrix.summary()


class TestHTTP3QuirkMatrix:
    @pytest.fixture(scope="class")
    def http3_matrix(self):
        return difftest_http3()

    def test_goaway_teardown_flagged_with_minimized_witness(
        self, http3_matrix
    ):
        """Acceptance: `repro difftest http3` pins the seeded quirk to
        the 3-symbol drain witness."""
        cell = http3_matrix.matrix.cell("http3", "http3-buggy")
        assert cell.verdict == VERDICT_DIVERGE
        assert cell.witness is not None
        assert cell.witness_validated
        assert [str(s) for s in cell.witness] == [
            "SETTINGS",
            "GOAWAY",
            "HEADERS[FIN]",
        ]
        models = {run.spec.name: run.model for run in http3_matrix.runs}
        exhaustive = find_difference(models["http3"], models["http3-buggy"])
        assert exhaustive is not None
        assert len(cell.witness) <= len(exhaustive)

    def test_size_gap_visible_in_diff(self, http3_matrix):
        diff = http3_matrix.diffs[("http3", "http3-buggy")]
        assert diff.states_a == 10
        assert diff.states_b == 7

    def test_member_property_suites_run_alongside_cross_replay(
        self, http3_matrix
    ):
        reports = {
            run.spec.name: run.properties for run in http3_matrix.runs
        }
        assert reports["http3"] is not None and reports["http3"].ok
        buggy = reports["http3-buggy"]
        verdict = buggy.verdict("goaway-drain-rejects-new")
        assert verdict.violated
        assert verdict.minimized
        assert "1 members violate properties" in http3_matrix.summary()


class TestTCPAblationMatrix:
    def test_challenge_ack_ablation_diverges(self):
        """Same target key, different target_params: disabling the
        challenge-ACK rate limiter is a visible behavioural difference."""
        result = difftest_tcp()
        matrix = result.matrix
        assert matrix.targets == ["tcp", "tcp-no-challenge-ack-limit"]
        cell = matrix.cell("tcp", "tcp-no-challenge-ack-limit")
        assert cell.verdict == VERDICT_DIVERGE
        assert cell.witness_validated
        diff = result.diffs[("tcp", "tcp-no-challenge-ack-limit")]
        assert diff.states_a == 6  # rate limiter adds a state
        assert diff.states_b == 5
        # The TCP suite runs per member and pins the ablation to the
        # named property (same finding, property-level evidence).
        reports = {run.spec.name: run.properties for run in result.runs}
        assert reports["tcp"].verdict("challenge-ack-rate-limited").holds
        ablation = reports["tcp-no-challenge-ack-limit"]
        assert ablation.verdict("challenge-ack-rate-limited").violated

"""Unit tests for the TCP reference client (the concretization oracle)."""

import pytest

from repro.netsim import SimulatedNetwork
from repro.tcp.client import TCPClient
from repro.tcp.segment import SEQ_MODULUS
from repro.tcp.server import TCPServer


@pytest.fixture
def stack():
    network = SimulatedNetwork()
    server = TCPServer(network)
    client = TCPClient(network, server.endpoint.address)
    return network, server, client


class TestConcretization:
    def test_syn_uses_iss_and_zero_ack(self, stack):
        _, _, client = stack
        segment = client.build_segment(("SYN",), 0)
        assert segment.seq_number == client.iss
        assert segment.ack_number == 0

    def test_ack_uses_tracked_numbers(self, stack):
        _, _, client = stack
        client.exchange(("SYN",), 0)
        segment = client.build_segment(("ACK",), 0)
        assert segment.seq_number == (client.iss + 1) % SEQ_MODULUS
        assert segment.ack_number == client.rcv_nxt
        assert client.rcv_nxt != 0  # learned from the SYN+ACK

    def test_payload_length_respected(self, stack):
        _, _, client = stack
        segment = client.build_segment(("ACK", "PSH"), 1)
        assert len(segment.payload) == 1

    def test_snd_nxt_advances_for_data(self, stack):
        _, _, client = stack
        client.exchange(("SYN",), 0)
        client.exchange(("ACK",), 0)
        before = client.snd_nxt
        client.exchange(("ACK", "PSH"), 1)
        assert client.snd_nxt == (before + 1) % SEQ_MODULUS

    def test_fin_consumes_sequence_number(self, stack):
        _, _, client = stack
        client.exchange(("SYN",), 0)
        client.exchange(("ACK",), 0)
        before = client.snd_nxt
        client.exchange(("FIN", "ACK"), 0)
        assert client.snd_nxt == (before + 1) % SEQ_MODULUS


class TestStateTracking:
    def test_reset_renews_iss(self, stack):
        _, _, client = stack
        old_iss = client.iss
        client.reset()
        assert client.iss != old_iss
        assert client.rcv_nxt == 0

    def test_reset_drops_stale_datagrams(self, stack):
        network, server, client = stack
        client.exchange(("SYN",), 0)
        # Put something in flight, then reset before reading it.
        client.endpoint.inbox.append(object())
        client.reset()
        assert client.endpoint.inbox == []

    def test_rcv_nxt_ignores_rst(self, stack):
        _, _, client = stack
        _, responses = client.exchange(("ACK",), 0)  # stray ACK draws RST
        assert responses[0].flags == frozenset({"RST"})
        assert client.rcv_nxt == 0  # RSTs do not advance the window


class TestExchangeSemantics:
    def test_exchange_returns_decoded_segments(self, stack):
        _, _, client = stack
        sent, responses = client.exchange(("SYN",), 0)
        assert sent.flags == frozenset({"SYN"})
        assert len(responses) == 1
        assert responses[0].has_flags("SYN", "ACK")

    def test_full_session_numbers_line_up(self, stack):
        """The classical sequence-number diagram of Fig. 3(a)."""
        _, _, client = stack
        syn, synack_list = client.exchange(("SYN",), 0)
        synack = synack_list[0]
        assert synack.ack_number == (syn.seq_number + 1) % SEQ_MODULUS

        ack, _ = client.exchange(("ACK",), 0)
        assert ack.seq_number == (syn.seq_number + 1) % SEQ_MODULUS
        assert ack.ack_number == (synack.seq_number + 1) % SEQ_MODULUS

        fin, finack_list = client.exchange(("FIN", "ACK"), 0)
        assert finack_list[0].ack_number == (fin.seq_number + 1) % SEQ_MODULUS

"""Unit tests for extended (register) Mealy machines."""

import pytest

from repro.core.alphabet import Alphabet, TCPSymbol, parse_tcp_symbol
from repro.core.extended import (
    ConcreteStep,
    ExtendedMealyMachine,
    TransitionAnnotation,
)
from repro.core.mealy import mealy_from_table
from repro.synth.terms import ConstTerm, InputTerm, PlusOne, RegisterTerm

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["SYN", "ACK"])
NIL = parse_tcp_symbol("NIL")


@pytest.fixture
def handshake_skeleton():
    alphabet = Alphabet.of([SYN, ACK])
    table = [
        ("s0", SYN, SYNACK, "s1"),
        ("s0", ACK, NIL, "s0"),
        ("s1", SYN, NIL, "s1"),
        ("s1", ACK, NIL, "s2"),
        ("s2", SYN, NIL, "s2"),
        ("s2", ACK, NIL, "s2"),
    ]
    return mealy_from_table("s0", alphabet, table, "handshake")


@pytest.fixture
def fig3c_machine(handshake_skeleton):
    """Fig. 3(c): on SYN the server acks sn+1 via register r."""
    hold = {"r": RegisterTerm("r")}
    annotations = {
        ("s0", SYN): TransitionAnnotation(
            updates={"r": PlusOne(InputTerm("sn"))},
            outputs={"an": RegisterTerm("r")},
        ),
        ("s0", ACK): TransitionAnnotation(updates=hold),
        ("s1", SYN): TransitionAnnotation(updates=hold),
        ("s1", ACK): TransitionAnnotation(updates=hold),
        ("s2", SYN): TransitionAnnotation(updates=hold),
        ("s2", ACK): TransitionAnnotation(updates=hold),
    }
    return ExtendedMealyMachine(
        skeleton=handshake_skeleton,
        register_names=("r",),
        initial_registers={"r": 0},
        annotations=annotations,
        name="fig3c",
    )


def _step(symbol, out_symbol, sn, an, **outputs):
    return ConcreteStep(symbol, out_symbol, {"sn": sn, "an": an}, outputs)


class TestExecution:
    def test_register_update_and_output(self, fig3c_machine):
        steps = [_step(SYN, SYNACK, sn=100, an=0)]
        predictions = fig3c_machine.execute(steps)
        assert predictions == [{"an": 101}]

    def test_registers_persist_across_steps(self, fig3c_machine):
        steps = [
            _step(SYN, SYNACK, sn=7, an=0),
            _step(ACK, NIL, sn=8, an=1),
        ]
        predictions = fig3c_machine.execute(steps)
        assert predictions[0] == {"an": 8}
        assert predictions[1] == {}  # no outputs modelled on that edge

    def test_consistency_check_passes(self, fig3c_machine):
        steps = [_step(SYN, SYNACK, sn=41, an=0)]
        steps[0].output_params.update({"an": 42})
        assert fig3c_machine.consistent_with(steps)

    def test_consistency_check_fails_on_wrong_value(self, fig3c_machine):
        steps = [_step(SYN, SYNACK, sn=41, an=0)]
        steps[0].output_params.update({"an": 99})
        assert not fig3c_machine.consistent_with(steps)

    def test_unobserved_params_are_ignored(self, fig3c_machine):
        steps = [_step(SYN, SYNACK, sn=41, an=0)]  # no observed outputs
        assert fig3c_machine.consistent_with(steps)

    def test_missing_input_field_is_inconsistent(self, fig3c_machine):
        step = ConcreteStep(SYN, SYNACK, {}, {"an": 42})
        assert not fig3c_machine.consistent_with([step])


class TestValidation:
    def test_missing_annotation_rejected(self, handshake_skeleton):
        with pytest.raises(ValueError):
            ExtendedMealyMachine(
                skeleton=handshake_skeleton,
                register_names=("r",),
                initial_registers={"r": 0},
                annotations={},
            )

    def test_dot_rendering_includes_terms(self, fig3c_machine):
        dot = fig3c_machine.to_dot()
        assert "sn+1" in dot
        assert "an=r" in dot


class TestConstTerm:
    def test_constant_output(self, handshake_skeleton):
        annotations = {
            (state, symbol): TransitionAnnotation(
                updates={"r": RegisterTerm("r")},
                outputs={"msd": ConstTerm(0)},
            )
            for state in handshake_skeleton.states
            for symbol in handshake_skeleton.input_alphabet
        }
        machine = ExtendedMealyMachine(
            handshake_skeleton, ("r",), {"r": 0}, annotations, "const"
        )
        steps = [_step(SYN, SYNACK, sn=1, an=2)]
        assert machine.execute(steps) == [{"msd": 0}]

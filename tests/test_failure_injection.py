"""Failure injection: environmental nondeterminism from a lossy network.

Paper section 5 distinguishes two nondeterminism sources: abstraction
collapse / implementation bugs versus *environmental* effects (latency,
packet loss).  The majority-vote check is designed to ride out the latter:
with enough repeats the true answer wins; with a strict budget the noise
surfaces as a NondeterminismError.
"""

import pytest

from repro.adapter.tcp_adapter import TCPAdapterSUL
from repro.core.alphabet import parse_tcp_symbol, tcp_handshake_alphabet
from repro.learn.nondeterminism import (
    MajorityVoteOracle,
    NondeterminismError,
    NondeterminismPolicy,
    estimate_response_distribution,
)
from repro.learn.teacher import SULMembershipOracle
from repro.netsim import LinkConfig

SYN = parse_tcp_symbol("SYN(?,?,0)")
ACK = parse_tcp_symbol("ACK(?,?,0)")


def lossy_sul(loss_rate: float, seed: int = 3) -> TCPAdapterSUL:
    return TCPAdapterSUL(
        alphabet=tcp_handshake_alphabet(),
        link=LinkConfig(loss_rate=loss_rate),
        seed=seed,
    )


class TestLossObservability:
    def test_loss_produces_differing_responses(self):
        oracle = SULMembershipOracle(lossy_sul(loss_rate=0.3))
        distribution = estimate_response_distribution(oracle, (SYN, ACK), 60)
        assert len(distribution) > 1  # the environment is visible

    def test_perfect_link_is_deterministic(self):
        oracle = SULMembershipOracle(lossy_sul(loss_rate=0.0))
        distribution = estimate_response_distribution(oracle, (SYN, ACK), 20)
        assert len(distribution) == 1


class TestMajorityVoteRidesOutLoss:
    def test_majority_recovers_true_answer(self):
        reference = lossy_sul(loss_rate=0.0)
        truth = reference.query((SYN, ACK))

        noisy = MajorityVoteOracle(
            SULMembershipOracle(lossy_sul(loss_rate=0.15)),
            NondeterminismPolicy(min_repeats=5, max_repeats=40, certainty=0.6),
        )
        recovered = noisy.query((SYN, ACK))
        assert recovered == truth

    def test_strict_budget_surfaces_the_noise(self):
        noisy = MajorityVoteOracle(
            SULMembershipOracle(lossy_sul(loss_rate=0.4, seed=8)),
            NondeterminismPolicy(min_repeats=3, max_repeats=5, certainty=0.99),
        )
        with pytest.raises(NondeterminismError):
            for _ in range(20):  # enough attempts for loss to strike
                noisy.query((SYN, ACK))


class TestLatencyAndJitterAreHarmless:
    def test_jitter_does_not_break_determinism(self):
        # Within one query the exchanges are strictly sequential, so
        # per-packet jitter cannot reorder request/response pairs.
        sul = TCPAdapterSUL(
            alphabet=tcp_handshake_alphabet(),
            link=LinkConfig(latency=0.01, jitter=0.05),
            seed=5,
        )
        first = sul.query((SYN, ACK, SYN))
        for _ in range(5):
            assert sul.query((SYN, ACK, SYN)) == first

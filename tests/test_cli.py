"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_learn_args(self):
        args = build_parser().parse_args(["learn", "tcp", "--table"])
        assert args.target == "tcp"
        assert args.table

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["learn", "http3"])

    def test_issue_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["issues", "9"])


class TestCommands:
    def test_learn_tcp_prints_summary(self, capsys, tmp_path):
        dot_path = tmp_path / "tcp.dot"
        code = main(["learn", "tcp", "--dot", str(dot_path), "--table"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "6 states" in captured
        assert dot_path.read_text().startswith("digraph")

    def test_check_holding_property(self, capsys):
        code = main(["check", "tcp", "G (in ~ SYN -> out != BOGUS)", "--depth", "3"])
        assert code == 0
        assert "holds" in capsys.readouterr().out

    def test_check_violated_property(self, capsys):
        code = main(["check", "tcp", "G (out == NIL)", "--depth", "3"])
        assert code == 1
        assert "violated" in capsys.readouterr().out

    def test_properties_rejects_tcp(self, capsys):
        assert main(["properties", "tcp"]) == 2

    def test_compare_differing_models(self, capsys):
        code = main(["compare", "quic-google", "quic-quiche"])
        out = capsys.readouterr().out
        assert code == 1  # models differ
        assert "states" in out

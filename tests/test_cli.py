"""Tests for the command-line interface.

Every subcommand has a smoke test; the heavy protocol targets are covered
once (``compare``/``properties`` on QUIC), everything else drives the
registered ``toy`` target or monkeypatched experiment drivers so the
suite stays fast.
"""

import json
from types import SimpleNamespace

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_learn_args(self):
        args = build_parser().parse_args(["learn", "tcp", "--table"])
        assert args.target == "tcp"
        assert args.table

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["learn", "spdy"])

    def test_registry_targets_accepted(self):
        args = build_parser().parse_args(["learn", "toy"])
        assert args.target == "toy"

    def test_issue_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["issues", "9"])

    def test_sweep_requires_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_sweep_collects_repeats(self):
        args = build_parser().parse_args(
            ["sweep", "--target", "toy", "--target", "tcp", "--learner", "lstar"]
        )
        assert args.target == ["toy", "tcp"]
        assert args.learner == ["lstar"]

    def test_executor_flag_parsed_everywhere(self):
        for argv in (
            ["run", "spec.json", "--executor", "process"],
            ["sweep", "--target", "toy", "--executor", "thread"],
            ["difftest", "toy", "--executor", "serial"],
        ):
            args = build_parser().parse_args(argv)
            assert args.executor == argv[-1]

    def test_executor_flag_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "spec.json", "--executor", "gpu"])


class TestCommands:
    def test_learn_tcp_prints_summary(self, capsys, tmp_path):
        dot_path = tmp_path / "tcp.dot"
        code = main(["learn", "tcp", "--dot", str(dot_path), "--table"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "6 states" in captured
        assert dot_path.read_text().startswith("digraph")

    def test_check_holding_property(self, capsys):
        code = main(["check", "tcp", "G (in ~ SYN -> out != BOGUS)", "--depth", "3"])
        assert code == 0
        assert "holds" in capsys.readouterr().out

    def test_check_violated_property(self, capsys):
        code = main(["check", "tcp", "G (out == NIL)", "--depth", "3"])
        assert code == 1
        assert "violated" in capsys.readouterr().out

    def test_compare_differing_models(self, capsys):
        code = main(["compare", "quic-google", "quic-quiche"])
        out = capsys.readouterr().out
        assert code == 1  # models differ
        assert "states" in out


class TestSmokeToyTarget:
    """Fast end-to-end smoke tests against the registered toy SUL."""

    def test_learn_toy(self, capsys):
        code = main(["learn", "toy", "--table"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 states" in out

    def test_learn_toy_lstar(self, capsys):
        code = main(["learn", "toy", "--learner", "lstar"])
        assert code == 0
        assert "3 states" in capsys.readouterr().out

    def test_compare_toy_with_itself(self, capsys):
        code = main(["compare", "toy", "toy"])
        assert code == 0  # equivalent models

    def test_check_toy(self, capsys):
        code = main(["check", "toy", "G (out != BOGUS)", "--depth", "3"])
        assert code == 0
        assert "holds" in capsys.readouterr().out


class TestRunCommand:
    def test_run_spec_file(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"target": "toy", "learner": "lstar"}))
        out_dir = tmp_path / "artifacts"
        code = main(["run", str(spec_path), "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 states" in out
        assert "artifacts:" in out
        produced = list(out_dir.iterdir())
        assert len(produced) == 1
        assert (produced[0] / "model.json").exists()

    def test_run_with_process_executor(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"target": "toy", "workers": 2}))
        code = main(["run", str(spec_path), "--executor", "process"])
        assert code == 0
        assert "3 states" in capsys.readouterr().out

    def test_run_rejects_bad_executor_combination(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"target": "toy", "workers": 4}))
        assert main(["run", str(spec_path), "--executor", "serial"]) == 2
        assert "serial executor" in capsys.readouterr().err

    def test_run_missing_file(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "absent.json")]) == 2

    def test_run_malformed_spec(self, capsys, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text("{not json")
        assert main(["run", str(spec_path)]) == 2

    def test_run_unknown_target(self, capsys, tmp_path):
        spec_path = tmp_path / "unknown.json"
        spec_path.write_text(json.dumps({"target": "spdy"}))
        assert main(["run", str(spec_path)]) == 2
        assert "invalid spec" in capsys.readouterr().err


class TestPassiveCommand:
    def test_generate_then_learn_with_artifacts(self, capsys, tmp_path):
        corpus = tmp_path / "toy.jsonl"
        out_dir = tmp_path / "artifacts"
        code = main(
            [
                "passive", "toy",
                "--corpus", str(corpus),
                "--generate", "60",
                "--out", str(out_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "generated 60 session traces" in out
        assert "passive:" in out
        assert "refinement:" in out
        assert (out_dir / "passive.json").exists()
        assert (out_dir / "model.json").exists()
        assert (out_dir / "model.dot").exists()
        payload = json.loads((out_dir / "passive.json").read_text())
        assert payload["corpus"]["traces"] == 60

    def test_full_corpus_needs_zero_resets(self, capsys, tmp_path):
        corpus = tmp_path / "full.jsonl"
        code = main(["passive", "toy", "--corpus", str(corpus), "--full"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recorded covering corpus" in out
        assert "0 SUL resets" in out

    def test_no_refine_stops_at_partial(self, capsys, tmp_path):
        corpus = tmp_path / "toy.jsonl"
        code = main(
            [
                "passive", "toy",
                "--corpus", str(corpus),
                "--generate", "40",
                "--no-refine",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "refinement" not in out

    def test_missing_corpus_is_a_config_error(self, capsys, tmp_path):
        assert main(["passive", "toy", "--corpus", str(tmp_path / "nope.jsonl")]) == 2
        assert "no corpus" in capsys.readouterr().err

    def test_generate_and_full_are_exclusive(self, capsys, tmp_path):
        code = main(
            [
                "passive", "toy",
                "--corpus", str(tmp_path / "c.jsonl"),
                "--generate", "5",
                "--full",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_malformed_corpus_fails_cleanly(self, capsys, tmp_path):
        corpus = tmp_path / "bad.jsonl"
        corpus.write_text("not json\n")
        assert main(["passive", "toy", "--corpus", str(corpus)]) == 1
        assert "passive run failed" in capsys.readouterr().err

    def test_corpus_flag_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["passive", "toy"])


class TestSweepCommand:
    def test_sweep_grid(self, capsys, tmp_path):
        out_dir = tmp_path / "sweep"
        code = main(
            [
                "sweep",
                "--target", "toy",
                "--learner", "ttt",
                "--learner", "lstar",
                "--seeds", "0,1",
                "--out", str(out_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        for name in ("toy-ttt-s0", "toy-ttt-s1", "toy-lstar-s0", "toy-lstar-s1"):
            assert name in out
        assert len(list(out_dir.iterdir())) == 4

    def test_sweep_reports_failures(self, capsys, monkeypatch):
        # unknown targets are rejected by argparse; force a failing run
        # through a spec whose middleware cannot be built
        from repro import campaign as campaign_module

        def boom(self, item):
            from repro.campaign import RunResult

            return RunResult(spec=item[1], report=None, model=None, error="boom")

        monkeypatch.setattr(campaign_module.Campaign, "_run_one", boom)
        code = main(["sweep", "--target", "toy"])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "1/1 runs failed" in captured.err


class TestDifftestCommand:
    def test_difftest_single_target_matrix(self, capsys):
        code = main(["difftest", "toy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "suite \\ subject" in out
        assert "self" in out

    def test_difftest_spec_files_and_targets_mix(self, capsys, tmp_path):
        spec_path = tmp_path / "toy-lstar.json"
        spec_path.write_text(json.dumps({"target": "toy", "learner": "lstar"}))
        out_dir = tmp_path / "artifacts"
        code = main(
            ["difftest", "toy", str(spec_path), "--out", str(out_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        # The spec file is named after its stem; both targets agree.
        assert "toy-lstar" in out
        assert "agree" in out
        assert (out_dir / "matrix.json").exists()

    def test_difftest_kinds_repeatable(self, capsys):
        code = main(
            ["difftest", "toy", "--kind", "transition-cover", "--kind", "random"]
        )
        assert code == 0

    def test_difftest_family_expands_anywhere_in_the_list(self, capsys):
        """A pure family stem expands even alongside other targets, and an
        expansion overlapping an explicit target does not duplicate runs."""
        from repro.adapter.mealy_sul import build_toy_sul
        from repro.registry import SUL_REGISTRY

        SUL_REGISTRY.register("fam-a", build_toy_sul)
        SUL_REGISTRY.register("fam-b", build_toy_sul)
        try:
            code = main(["difftest", "fam", "toy", "fam-a"])
            out = capsys.readouterr().out
            assert code == 0
            assert "fam-a" in out and "fam-b" in out and "toy" in out
            # fam-a appears once despite being named twice (family + exact).
            assert len([l for l in out.splitlines() if l.startswith("fam-a:")]) == 1
        finally:
            SUL_REGISTRY.unregister("fam-a")
            SUL_REGISTRY.unregister("fam-b")

    def test_difftest_exact_suppresses_family_expansion(self, capsys):
        from repro.adapter.mealy_sul import build_toy_sul
        from repro.registry import SUL_REGISTRY

        SUL_REGISTRY.register("toy-sibling", build_toy_sul)
        try:
            code = main(["difftest", "toy", "--exact"])
            out = capsys.readouterr().out
            assert code == 0
            assert "toy-sibling" not in out  # 1x1 self-conformance only
        finally:
            SUL_REGISTRY.unregister("toy-sibling")

    def test_difftest_unknown_target(self, capsys):
        assert main(["difftest", "no-such-thing"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_difftest_malformed_spec_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["difftest", str(bad)]) == 2

    def test_difftest_fail_on_diverge(self, capsys, monkeypatch, tmp_path):
        # A mutant toy target makes the pair diverge; the CI gate flag
        # must turn that into exit code 1.
        from repro.adapter.mealy_sul import MealySUL, toy_machine
        from repro.core.mealy import MealyMachine
        from repro.registry import SUL_REGISTRY

        base = toy_machine()
        syn, ack = base.input_alphabet.symbols
        rst = base.step("s1", syn)[1]
        table = {
            (t.source, t.input): (t.target, t.output) for t in base.transitions()
        }
        table[("s1", ack)] = (table[("s1", ack)][0], rst)
        mutant = MealyMachine("s0", base.input_alphabet, table, "toy-cli-mutant")
        SUL_REGISTRY.register(
            "toy-cli-mutant", lambda: MealySUL(mutant, name="toy-cli-mutant")
        )
        try:
            assert main(["difftest", "toy", "toy-cli-mutant"]) == 0
            assert (
                main(["difftest", "toy", "toy-cli-mutant", "--fail-on-diverge"])
                == 1
            )
        finally:
            SUL_REGISTRY.unregister("toy-cli-mutant")


class TestIssuesCommand:
    """Smoke the issues wiring with stubbed drivers (the real experiments
    run in the benchmark suite; here only the CLI plumbing is under test)."""

    def test_issue1(self, capsys, monkeypatch):
        import repro.experiments as experiments

        stub = SimpleNamespace(diff=SimpleNamespace(render=lambda: "stub-diff"))
        monkeypatch.setattr(
            experiments, "issue1_retry_divergence", lambda: stub
        )
        assert main(["issues", "1"]) == 0
        assert "stub-diff" in capsys.readouterr().out

    def test_issue2(self, capsys, monkeypatch):
        import repro.experiments as experiments

        stub = SimpleNamespace(error="nondeterministic", reset_rate=0.82)
        monkeypatch.setattr(experiments, "issue2_nondeterminism", lambda: stub)
        assert main(["issues", "2"]) == 0
        assert "82%" in capsys.readouterr().out

    def test_issue3(self, capsys, monkeypatch):
        import repro.experiments as experiments

        stub = SimpleNamespace(buggy_establishes=False, fixed_establishes=True)
        monkeypatch.setattr(experiments, "issue3_retry_port", lambda: stub)
        assert main(["issues", "3"]) == 0
        out = capsys.readouterr().out
        assert "buggy client establishes: False" in out

    def test_issue4(self, capsys, monkeypatch):
        import repro.experiments as experiments

        stub = SimpleNamespace(buggy_constant=0, fixed_constant=None)
        monkeypatch.setattr(
            experiments, "issue4_stream_data_blocked", lambda: stub
        )
        assert main(["issues", "4"]) == 0
        out = capsys.readouterr().out
        assert "constant 0" in out
        assert "state-dependent" in out


class TestPropertiesCommand:
    """The registry-driven property surface: suites resolve per target,
    families expand, spec files work, --formula reaches the LTLf parser."""

    def test_properties_quic_google(self, capsys):
        code = main(["properties", "quic-google", "--depth", "3"])
        out = capsys.readouterr().out
        assert code == 0  # every standard QUIC property holds
        assert "holds" in out

    def test_properties_toy_suite(self, capsys):
        code = main(["properties", "toy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ack-is-ignored" in out
        assert "toy properties:" in out

    def test_properties_tcp_suite_now_supported(self, capsys):
        code = main(["properties", "tcp", "--exact", "--depth", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "challenge-ack-rate-limited" in out

    def test_properties_formula_violation_exits_nonzero(self, capsys):
        code = main(["properties", "toy", "--formula", "G (out == NIL)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATED" in out
        assert "witness:" in out

    def test_properties_formula_holding(self, capsys):
        code = main(
            ["properties", "toy", "--formula", "G (in ~ ACK -> out == NIL)"]
        )
        assert code == 0
        assert "formula:" in capsys.readouterr().out

    def test_properties_list_does_not_learn(self, capsys):
        code = main(["properties", "toy", "--list", "--formula", "G (out == NIL)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[ltlf]" in out
        assert "formula: G (out == NIL)" in out
        assert "holds" not in out  # nothing was checked

    def test_properties_spec_file_with_section(self, capsys, tmp_path):
        spec_path = tmp_path / "toy-props.json"
        spec_path.write_text(
            json.dumps(
                {
                    "target": "toy",
                    "properties": {"depth": 3, "formulas": ["G (out == NIL)"]},
                }
            )
        )
        out_dir = tmp_path / "artifacts"
        code = main(["properties", str(spec_path), "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 1  # the spec's own formula is violated
        produced = list(out_dir.iterdir())
        assert len(produced) == 1
        verdicts = json.loads((produced[0] / "properties.json").read_text())
        assert verdicts["ok"] is False
        assert "artifacts:" in out

    def test_properties_family_expansion(self, capsys):
        from repro.adapter.mealy_sul import build_toy_sul
        from repro.registry import SUL_REGISTRY

        SUL_REGISTRY.register("toy-sibling", build_toy_sul)
        try:
            code = main(["properties", "toy"])
            out = capsys.readouterr().out
            assert code == 0
            assert "== toy" in out and "== toy-sibling" in out
        finally:
            SUL_REGISTRY.unregister("toy-sibling")

    def test_properties_unknown_target(self, capsys):
        assert main(["properties", "no-such-thing"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_properties_spec_with_unknown_suite_exits_cleanly(
        self, capsys, tmp_path
    ):
        spec_path = tmp_path / "bad-suite.json"
        spec_path.write_text(
            json.dumps(
                {"target": "toy", "properties": {"suite": "no-such-suite"}}
            )
        )
        assert main(["properties", str(spec_path)]) == 2
        assert "invalid property campaign" in capsys.readouterr().err

    def test_properties_list_honours_spec_section(self, capsys, tmp_path):
        """--list must show what a run would actually check: the spec's
        explicit suite and formulas, plus CLI formulas."""
        spec_path = tmp_path / "tcp-suite.json"
        spec_path.write_text(
            json.dumps(
                {
                    "target": "toy",
                    "properties": {
                        "suite": "tcp",
                        "formulas": ["G (out == NIL)"],
                    },
                }
            )
        )
        code = main(
            ["properties", str(spec_path), "--list", "--formula", "F (out ~ SYN)"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "challenge-ack-rate-limited" in out  # the named tcp suite
        assert "ack-is-ignored" not in out  # not toy's auto-resolved one
        assert "formula: G (out == NIL)" in out
        assert "formula: F (out ~ SYN)" in out

    def test_properties_no_suite_no_formula(self, capsys):
        from repro.adapter.mealy_sul import build_toy_sul
        from repro.registry import SUL_REGISTRY

        SUL_REGISTRY.register("bare-target", build_toy_sul)
        try:
            assert main(["properties", "bare-target"]) == 2
            assert "no properties to check" in capsys.readouterr().err
            # ... but an ad-hoc formula makes it checkable.
            assert (
                main(["properties", "bare-target", "--formula", "G (out != NIL)"])
                == 1
            )
        finally:
            SUL_REGISTRY.unregister("bare-target")


class TestCiCommand:
    def _seed(self, tmp_path):
        """A store seeded by one cold toy run; returns its path."""
        spec_path = tmp_path / "toy.json"
        spec_path.write_text(json.dumps({"target": "toy", "name": "toy"}))
        store = tmp_path / "store.sqlite"
        assert main(["run", str(spec_path), "--store", str(store)]) == 0
        return store

    def test_ci_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ci", "toy"])

    def test_ci_cold_then_green(self, capsys, tmp_path):
        store = tmp_path / "store.sqlite"
        assert main(["ci", "toy", "--store", str(store)]) == 0
        assert "cold learn" in capsys.readouterr().out
        assert main(["ci", "toy", "--store", str(store)]) == 0
        assert "revalidated" in capsys.readouterr().out

    def test_ci_unchanged_exits_zero_without_sul_queries(self, capsys, tmp_path):
        store = self._seed(tmp_path)
        assert main(["ci", "toy", "--exact", "--store", str(store)]) == 0
        assert "0 SUL queries" in capsys.readouterr().out

    def test_ci_drift_exits_nonzero_with_witness(self, capsys, tmp_path):
        spec_path = tmp_path / "http2.json"
        spec_path.write_text(json.dumps({"target": "http2", "name": "http2"}))
        store = tmp_path / "store.sqlite"
        assert main(["run", str(spec_path), "--store", str(store)]) == 0
        out_dir = tmp_path / "drift"
        code = main(
            ["ci", "http2-buggy", "--baseline", "http2",
             "--store", str(store), "--out", str(out_dir)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DRIFT" in out
        assert "RST_STREAM" in out  # the minimized witness is printed
        artifact = json.loads((out_dir / "ci-http2-buggy.json").read_text())
        assert artifact["drifted"] is True
        assert artifact["diff"]["witnesses"]

    def test_ci_writes_artifact_when_green(self, capsys, tmp_path):
        store = self._seed(tmp_path)
        out_dir = tmp_path / "ci"
        assert main(
            ["ci", "toy", "--exact", "--store", str(store),
             "--out", str(out_dir)]
        ) == 0
        artifact = json.loads((out_dir / "ci-toy.json").read_text())
        assert artifact["mode"] == "revalidated"
        assert artifact["revalidation_sul_queries"] == 0

    def test_ci_unknown_target(self, capsys, tmp_path):
        store = tmp_path / "store.sqlite"
        assert main(["ci", "http9", "--store", str(store)]) == 2
        assert "unknown target" in capsys.readouterr().err


class TestStoreCommand:
    def test_store_missing_file(self, capsys, tmp_path):
        assert main(["store", str(tmp_path / "absent.sqlite")]) == 2
        assert "no store" in capsys.readouterr().err

    def test_store_stats(self, capsys, tmp_path):
        spec_path = tmp_path / "toy.json"
        spec_path.write_text(json.dumps({"target": "toy", "name": "toy"}))
        store = tmp_path / "store.sqlite"
        assert main(["run", str(spec_path), "--store", str(store)]) == 0
        assert main(["store", str(store), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "1 fingerprints" in out
        assert "observations:" in out
        assert "models: 1" in out

    def test_store_gc_by_target_name(self, capsys, tmp_path):
        spec_path = tmp_path / "toy.json"
        spec_path.write_text(json.dumps({"target": "toy", "name": "toy"}))
        store = tmp_path / "store.sqlite"
        assert main(["run", str(spec_path), "--store", str(store)]) == 0
        assert main(["store", str(store), "--gc", "toy"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["store", str(store), "--stats"]) == 0
        assert "empty store" in capsys.readouterr().out


class TestAttackCommand:
    def test_help_epilog_lists_every_verb(self):
        text = build_parser().format_help()
        for verb in ("learn", "compare", "check", "properties", "issues",
                     "run", "passive", "sweep", "difftest", "attack", "ci",
                     "store"):
            assert verb in text

    def test_family_confirms_and_spares_the_conformant_variant(self, capsys):
        code = main(["attack", "tcp", "--attacker", "challenge-ack-exhaust"])
        out = capsys.readouterr().out
        assert code == 0
        # One invocation covers the family: CONFIRMED on the rate-limited
        # target, goal unreachable (no false attack) on the ablation.
        assert "attack tcp: 1 confirmed" in out
        assert "CONFIRMED" in out
        assert "tcp-no-challenge-ack: 0 confirmed, 1 unreachable" in out
        assert "no false attack" in out

    def test_unknown_attacker_exits_2_with_known_keys(self, capsys):
        code = main(["attack", "tcp", "--attacker", "ghost"])
        assert code == 2
        err = capsys.readouterr().err
        assert "ghost" in err
        assert "off-path-rst" in err

    def test_unknown_target_exits_2(self, capsys):
        assert main(["attack", "smtp"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_list_prints_applicable_attackers(self, capsys):
        code = main(["attack", "http2-buggy", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "http2-buggy: rapid-reset" in out

    def test_fuzz_with_artifacts_and_corpus(self, capsys, tmp_path):
        out_dir = tmp_path / "attacks"
        code = main([
            "attack", "http2-buggy", "--fuzz", "--budget", "50",
            "--out", str(out_dir),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz 0 divergences/50 words" in out
        data = json.loads(
            (out_dir / "000-http2-buggy" / "attacks.json").read_text()
        )
        assert data["ok"] is True
        assert data["fuzz"]["words_sent"] == 50
        corpus = out_dir / "attack-http2-buggy-corpus.jsonl"
        assert corpus.exists()
        assert len(corpus.read_text().splitlines()) == 1  # confirmed attack

    def test_objective_flag_validated(self, capsys):
        assert main(["attack", "tcp", "--objective", "G (("]) == 2
        assert "bad attack objective" in capsys.readouterr().err

"""Determinism regression: same spec + same seed => byte-identical results.

Campaign artifacts are diffed and cached across runs (and the difftest
matrix compares suites generated from re-learned models), so learning
must be reproducible down to the serialized byte: two runs of an
identical spec must produce byte-identical model JSON and identical
generated test suites -- serially *and* on a 4-worker pool, which must
also match the serial bytes exactly.
"""

import json

import pytest

from repro.analysis.testgen import generate_test_suite
from repro.campaign import run_spec
from repro.spec import ExperimentSpec


def learn_model_json(spec: ExperimentSpec) -> tuple[str, object]:
    result = run_spec(spec)
    assert result.ok, result.error
    model = result.model.minimize()
    return json.dumps(model.to_dict(), sort_keys=True), model


def suites_of(model) -> dict[str, list]:
    return {
        kind: generate_test_suite(model, kind, extra_states=1, seed=3)
        for kind in ("transition-cover", "wmethod", "random")
    }


@pytest.mark.parametrize(
    "workers,executor",
    [(1, None), (4, None), (4, "process")],
    ids=["serial", "pooled", "process"],
)
@pytest.mark.parametrize("target", ["toy", "tcp-handshake"])
def test_same_spec_same_seed_is_byte_identical(target, workers, executor):
    spec = ExperimentSpec(
        target=target, seed=7, workers=workers, name=target, executor=executor
    )
    first_json, first_model = learn_model_json(spec)
    second_json, second_model = learn_model_json(spec.clone())
    assert first_json == second_json
    assert suites_of(first_model) == suites_of(second_model)


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("target", ["toy", "tcp-handshake"])
def test_pooled_matches_serial_bytes(target, backend):
    serial_json, serial_model = learn_model_json(
        ExperimentSpec(target=target, seed=7, workers=1, name=target)
    )
    pooled_json, pooled_model = learn_model_json(
        ExperimentSpec(
            target=target, seed=7, workers=4, name=target, executor=backend
        )
    )
    assert serial_json == pooled_json
    assert suites_of(serial_model) == suites_of(pooled_model)


def test_socket_sul_is_byte_identical_and_matches_local():
    """The real process/socket boundary changes nothing the learner sees:
    two remote runs are byte-identical, and equal to the in-process run."""
    spec = ExperimentSpec(target="remote-tcp", seed=7, name="tcp")
    first_json, first_model = learn_model_json(spec)
    second_json, _ = learn_model_json(spec.clone())
    local_json, local_model = learn_model_json(
        ExperimentSpec(target="tcp", seed=7, name="tcp")
    )
    assert first_json == second_json == local_json
    assert suites_of(first_model) == suites_of(local_model)


def test_random_suite_seed_changes_bytes():
    """The seed is load-bearing: a different EQ seed may change queries but
    never the learned model; a different *suite* seed changes the suite."""
    spec = ExperimentSpec(target="toy", seed=7, name="toy")
    _, model = learn_model_json(spec)
    assert generate_test_suite(model, "random", seed=3) != generate_test_suite(
        model, "random", seed=4
    )

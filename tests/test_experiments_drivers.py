"""Fast sanity tests for the experiment drivers and their paper constants."""

from repro.core.trace import count_words
from repro.experiments import (
    PAPER_GOOGLE_STATES,
    PAPER_GOOGLE_TRANSITIONS,
    PAPER_QUICHE_STATES,
    PAPER_QUICHE_TRANSITIONS,
    PAPER_TCP_STATES,
    PAPER_TCP_TRANSITIONS,
    PAPER_TOTAL_TRACES,
    loc_report,
)
from repro.experiments.tcp_experiments import handshake_expectation


class TestPaperConstants:
    def test_transition_counts_are_states_times_alphabet(self):
        assert PAPER_TCP_TRANSITIONS == PAPER_TCP_STATES * 7
        assert PAPER_GOOGLE_TRANSITIONS == PAPER_GOOGLE_STATES * 7
        assert PAPER_QUICHE_TRANSITIONS == PAPER_QUICHE_STATES * 7

    def test_total_traces_formula(self):
        assert PAPER_TOTAL_TRACES == count_words(7, 10)

    def test_handshake_expectation_shape(self):
        expectation = handshake_expectation()
        assert expectation[0] == ("SYN(?,?,0)", "ACK+SYN(?,?,0)")
        assert expectation[1] == ("ACK(?,?,0)", "NIL")


class TestPropertyDrivers:
    def test_check_target_properties_toy(self):
        from repro.experiments import check_target_properties

        report = check_target_properties("toy", depth=4)
        assert report.ok
        assert report.verdict("ack-is-ignored").holds

    def test_property_sweep_attaches_reports(self, tmp_path):
        from repro.experiments import property_sweep

        results = property_sweep(
            ["toy"], depth=3, workers=2, output_dir=tmp_path
        )
        assert len(results) == 1
        assert results[0].properties is not None
        assert results[0].properties.ok
        assert (tmp_path / "000-toy" / "properties.json").exists()


class TestLocReport:
    def test_counts_are_positive_and_ordered(self):
        measured = loc_report()
        assert 0 < measured.adapter_framework < measured.quic_reference
        assert 0 < measured.tcp_instrumentation < measured.quic_instrumentation
        assert measured.quic_instrumentation < measured.quic_reference

    def test_render_mentions_paper_numbers(self):
        text = loc_report().render()
        assert "2700" in text
        assert "10000" in text

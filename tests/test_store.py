"""Tests for the persistent query/model store subsystem.

Covers the sqlite round-trips, the ``store`` middleware's hit attribution
and -- the headline guarantee -- warm-start identity: a re-learn through a
populated store yields a byte-identical model with >= 90% of membership
queries served from the store and zero SUL resets, on every executor
backend.
"""

import json
import sqlite3

import pytest

from repro.campaign import Campaign, run_spec
from repro.learn.cache import CacheInconsistencyError
from repro.spec import ExecutorSpec, ExperimentSpec, SpecError, StoreSpec, assemble
from repro.store import (
    FingerprintStats,
    ModelStore,
    QueryStore,
    StoreBackedCache,
    StoreError,
    decode_word,
    encode_word,
)


def _model_bytes(model) -> str:
    return json.dumps(model.to_dict(), sort_keys=True)


class TestWordCodec:
    def test_round_trip(self, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        word = (syn, ack, syn)
        assert decode_word(encode_word(word)) == word

    def test_canonical_text(self, ab_alphabet):
        syn, _ = ab_alphabet.symbols
        text = encode_word((syn,))
        assert text == encode_word(decode_word(text))
        json.loads(text)  # valid, human-inspectable JSON


class TestQueryStore:
    def test_append_and_load_round_trip(self, tmp_path, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        path = tmp_path / "store.sqlite"
        with QueryStore(path) as store:
            store.append("fp", (syn, ack), toy_machine.run((syn, ack)))
            store.append("fp", (ack,), toy_machine.run((ack,)))
        with QueryStore(path) as store:
            cache = store.load("fp")
            assert cache.lookup((syn, ack)) == toy_machine.run((syn, ack))
            assert cache.lookup((syn,)) == toy_machine.run((syn,))  # prefix
            assert store.word_count("fp") == 2
            assert store.fingerprints() == ["fp"]

    def test_append_is_idempotent(self, tmp_path, toy_machine, ab_alphabet):
        syn, _ = ab_alphabet.symbols
        path = tmp_path / "store.sqlite"
        with QueryStore(path) as store:
            for _ in range(3):
                store.append("fp", (syn,), toy_machine.run((syn,)))
            store.flush()
            assert store.word_count("fp") == 1

    def test_flush_every_batches_writes(self, tmp_path, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        path = tmp_path / "store.sqlite"
        store = QueryStore(path, flush_every=10)
        store.append("fp", (syn,), toy_machine.run((syn,)))
        with sqlite3.connect(path) as probe:
            (count,) = probe.execute(
                "SELECT COUNT(*) FROM observations"
            ).fetchone()
        assert count == 0  # still buffered
        store.close()  # close flushes
        with sqlite3.connect(path) as probe:
            (count,) = probe.execute(
                "SELECT COUNT(*) FROM observations"
            ).fetchone()
        assert count == 1

    def test_fingerprints_are_isolated(self, tmp_path, toy_machine, ab_alphabet):
        syn, _ = ab_alphabet.symbols
        path = tmp_path / "store.sqlite"
        with QueryStore(path) as store:
            store.append("a", (syn,), toy_machine.run((syn,)))
            store.flush()
            assert store.word_count("b") == 0
            assert store.load("b").entries == 0

    def test_gc_drops_one_fingerprint(self, tmp_path, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        path = tmp_path / "store.sqlite"
        with QueryStore(path) as store:
            store.append("a", (syn,), toy_machine.run((syn,)))
            store.append("a", (ack,), toy_machine.run((ack,)))
            store.append("b", (syn,), toy_machine.run((syn,)))
            store.record_usage("a", hits=5, misses=2)
            assert store.gc("a") == 2
            assert store.word_count("a") == 0
            assert store.usage("a") == (0, 0)
            assert store.word_count("b") == 1

    def test_conflicting_rows_raise_on_load(self, tmp_path, ab_alphabet, out_symbols):
        syn, _ = ab_alphabet.symbols
        synack, nil = out_symbols
        path = tmp_path / "store.sqlite"
        with QueryStore(path) as store:
            store.append("fp", (syn,), (synack,))
            # A second writer stored a disagreeing extension of the word.
            store.append("fp", (syn, syn), (nil, nil))
        with QueryStore(path) as store:
            with pytest.raises(CacheInconsistencyError):
                store.load("fp")

    def test_usage_accumulates_across_sessions(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with QueryStore(path) as store:
            store.record_usage("fp", hits=3, misses=1)
        with QueryStore(path) as store:
            store.record_usage("fp", hits=2, misses=0)
            assert store.usage("fp") == (5, 1)

    def test_rejects_bad_flush_every(self, tmp_path):
        with pytest.raises(StoreError):
            QueryStore(tmp_path / "store.sqlite", flush_every=0)

    def test_stats_hit_rate(self):
        stats = FingerprintStats(
            fingerprint="fp", observations=10, models=1, hits=9, misses=1
        )
        assert stats.hit_rate == pytest.approx(0.9)
        empty = FingerprintStats("fp", 0, 0, 0, 0)
        assert empty.hit_rate == 0.0


class TestModelStore:
    def test_save_and_latest_round_trip(self, tmp_path, toy_machine):
        path = tmp_path / "store.sqlite"
        with ModelStore(path) as models:
            version = models.save(
                "fp", toy_machine, spec={"target": "toy"}, stats={"rounds": 1}
            )
            assert version == 1
        with ModelStore(path) as models:
            record = models.latest("fp")
            assert record.version == 1
            assert record.spec == {"target": "toy"}
            assert record.stats == {"rounds": 1}
            assert _model_bytes(record.machine()) == _model_bytes(toy_machine)

    def test_versions_form_a_lineage(self, tmp_path, toy_machine):
        path = tmp_path / "store.sqlite"
        with ModelStore(path) as models:
            assert models.save("fp", toy_machine) == 1
            assert models.save("fp", toy_machine) == 2
            assert models.save("other", toy_machine) == 1
            assert [r.version for r in models.history("fp")] == [1, 2]
            assert models.version_count("fp") == 2
            assert models.fingerprints() == ["fp", "other"]
            assert models.latest("missing") is None

    def test_gc_drops_lineage(self, tmp_path, toy_machine):
        path = tmp_path / "store.sqlite"
        with ModelStore(path) as models:
            models.save("fp", toy_machine)
            models.save("fp", toy_machine)
            assert models.gc("fp") == 2
            assert models.latest("fp") is None

    def test_shares_file_with_query_store(self, tmp_path, toy_machine, ab_alphabet):
        syn, _ = ab_alphabet.symbols
        path = tmp_path / "store.sqlite"
        with QueryStore(path) as store:
            store.append("fp", (syn,), toy_machine.run((syn,)))
        with ModelStore(path) as models:
            models.save("fp", toy_machine)
        with QueryStore(path) as store:
            assert store.word_count("fp") == 1


class TestStoreSpecSection:
    def test_round_trips_losslessly(self):
        spec = ExperimentSpec(
            target="toy", store=StoreSpec(path="s.sqlite", flush_every=8)
        )
        again = ExperimentSpec.from_json(spec.to_json())
        assert again == spec
        assert again.store.flush_every == 8

    def test_string_shorthand(self):
        spec = ExperimentSpec.from_dict(
            {"target": "toy", "store": "s.sqlite"}
        )
        assert spec.store == StoreSpec(path="s.sqlite")

    def test_absent_section_stays_none(self):
        spec = ExperimentSpec(target="toy")
        assert spec.store is None
        assert ExperimentSpec.from_json(spec.to_json()).store is None

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict(
                {"target": "toy", "store": {"path": "s", "nope": 1}}
            )

    def test_validate_needs_a_cache_layer(self):
        spec = ExperimentSpec(
            target="toy", middleware=[], store=StoreSpec(path="s.sqlite")
        )
        with pytest.raises(SpecError):
            spec.validate()

    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(SpecError):
            ExperimentSpec(target="toy", store=StoreSpec(path="")).validate()
        with pytest.raises(SpecError):
            ExperimentSpec(
                target="toy", store=StoreSpec(path="s", flush_every=0)
            ).validate()

    def test_clone_deep_copies_the_section(self):
        spec = ExperimentSpec(target="toy", store=StoreSpec(path="s.sqlite"))
        clone = spec.clone()
        clone.store.path = "other.sqlite"
        assert spec.store.path == "s.sqlite"

    def test_fingerprint_ignores_store(self):
        bare = ExperimentSpec(target="toy")
        stored = ExperimentSpec(target="toy", store=StoreSpec(path="s.sqlite"))
        assert bare.sul_fingerprint() == stored.sul_fingerprint()

    def test_assemble_swaps_cache_for_store(self, tmp_path):
        spec = ExperimentSpec(
            target="toy", store=StoreSpec(path=str(tmp_path / "s.sqlite"))
        )
        pipeline = assemble(spec)
        try:
            assert isinstance(pipeline.middleware[0], StoreBackedCache)
            assert pipeline.middleware[0].fingerprint == spec.sul_fingerprint()
        finally:
            for layer in pipeline.middleware:
                layer.close()


class TestStoreBackedCache:
    def _learn(self, spec, store):
        result = run_spec(spec, store=store)
        assert result.ok, result.error
        return result

    def test_cold_run_populates_the_store(self, tmp_path):
        store = tmp_path / "store.sqlite"
        spec = ExperimentSpec(target="toy", name="toy")
        result = self._learn(spec, store)
        assert result.report.store_hit_rate == 0.0
        with QueryStore(store) as qs:
            assert qs.word_count(spec.sul_fingerprint()) > 0
        with ModelStore(store) as ms:
            assert ms.version_count(spec.sul_fingerprint()) == 1

    @pytest.mark.parametrize(
        "executor",
        [None, ExecutorSpec(kind="thread", workers=2),
         ExecutorSpec(kind="process", workers=2)],
        ids=["serial", "thread", "process"],
    )
    def test_warm_start_identity(self, tmp_path, executor):
        """Cold then warm re-learn: byte-identical model, >= 90% of the
        queries store-served, zero SUL resets -- on every backend."""
        store = tmp_path / "store.sqlite"
        workers = 1 if executor is None else executor.workers
        spec = ExperimentSpec(
            target="tcp-handshake", name="tcp-handshake",
            workers=workers, executor=executor,
        )
        cold = self._learn(spec, store)
        warm = self._learn(spec, store)
        assert _model_bytes(warm.model) == _model_bytes(cold.model)
        assert warm.report.store_hit_rate >= 0.9
        assert warm.report.sul_resets == 0

    def test_store_hits_attributed_only_to_preloaded(self, tmp_path):
        store = tmp_path / "store.sqlite"
        spec = ExperimentSpec(target="toy", name="toy")
        cold = self._learn(spec, store)
        assert cold.report.store_hits == 0  # nothing preloaded yet
        warm = self._learn(spec, store)
        assert warm.report.store_hits > 0
        assert warm.report.store_hits <= warm.report.oracle_queries

    def test_usage_recorded_on_close(self, tmp_path):
        store = tmp_path / "store.sqlite"
        spec = ExperimentSpec(target="toy", name="toy")
        self._learn(spec, store)
        self._learn(spec, store)
        with QueryStore(store) as qs:
            hits, misses = qs.usage(spec.sul_fingerprint())
        assert misses > 0  # the cold run
        assert hits > 0  # the warm run

    def test_campaign_store_parameter_reaches_every_spec(self, tmp_path):
        store = tmp_path / "store.sqlite"
        campaign = Campaign(
            [ExperimentSpec(target="toy", name="a"),
             ExperimentSpec(target="toy", name="b")],
            store=store,
        )
        assert all(spec.store is not None for spec in campaign.specs)
        results = campaign.run()
        assert all(result.ok for result in results)
        with QueryStore(store) as qs:
            assert qs.word_count(campaign.specs[0].sul_fingerprint()) > 0

    def test_spec_own_store_section_wins(self, tmp_path):
        own = StoreSpec(path=str(tmp_path / "own.sqlite"))
        campaign = Campaign(
            [ExperimentSpec(target="toy", store=own)],
            store=tmp_path / "other.sqlite",
        )
        assert campaign.specs[0].store.path == own.path

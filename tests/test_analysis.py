"""Tests for the analysis module: equivalence, diff, statistics, visualize."""

import pytest

from repro.analysis.diff import behavioural_summary, diff_models
from repro.analysis.equivalence import (
    AlphabetMismatchError,
    bisimulation_classes,
    difference_witness,
    equivalent,
    find_difference,
)
from repro.analysis.statistics import trace_reduction
from repro.analysis.visualize import side_by_side, summary, to_dot, transition_table
from repro.core.alphabet import Alphabet, TCPSymbol, quic_alphabet
from repro.core.mealy import MealyMachine

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["SYN", "ACK"])
NIL = TCPSymbol(label="NIL")


def mutate_output(machine, state, symbol, new_output):
    table = {
        (t.source, t.input): (t.target, t.output) for t in machine.transitions()
    }
    target, _ = table[(state, symbol)]
    table[(state, symbol)] = (target, new_output)
    return MealyMachine(machine.initial_state, machine.input_alphabet, table, "mutant")


class TestEquivalence:
    def test_machine_equivalent_to_itself(self, toy_machine):
        assert equivalent(toy_machine, toy_machine)

    def test_minimized_equivalent_to_original(self, redundant_machine):
        assert equivalent(redundant_machine, redundant_machine.minimize())

    def test_difference_found_and_is_shortest(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        mutant = mutate_output(toy_machine, "s1", ack, SYNACK)
        word = find_difference(toy_machine, mutant)
        assert word is not None
        assert len(word) == 2  # need syn then ack to reach the mutation
        assert toy_machine.run(word) != mutant.run(word)

    def test_alphabet_mismatch_rejected(self, toy_machine):
        other_alphabet = Alphabet.of([SYN])
        other = MealyMachine("q", other_alphabet, {("q", SYN): ("q", NIL)})
        with pytest.raises(AlphabetMismatchError):
            find_difference(toy_machine, other)

    def test_witness_contains_both_traces(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        mutant = mutate_output(toy_machine, "s0", syn, NIL)
        witness = difference_witness(toy_machine, mutant)
        assert witness is not None
        assert witness.trace_a.outputs != witness.trace_b.outputs
        assert "input word" in witness.render()

    def test_bisimulation_classes(self, redundant_machine):
        classes = bisimulation_classes(redundant_machine)
        sizes = sorted(len(c) for c in classes)
        assert sizes == [1, 1, 2]  # s0 and s0b collapse


class TestDiff:
    def test_diff_reports_sizes(self, toy_machine, redundant_machine):
        diff = diff_models(toy_machine, redundant_machine)
        assert diff.states_a == 3
        assert diff.states_b == 4
        assert diff.size_gap == 1
        assert diff.equivalent  # behaviourally equal despite size gap

    def test_diff_collects_witnesses(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        mutant = mutate_output(toy_machine, "s1", ack, SYNACK)
        diff = diff_models(toy_machine, mutant, max_witnesses=3)
        assert not diff.equivalent
        assert 1 <= len(diff.witnesses) <= 3
        assert "divergence" in diff.render()

    def test_behavioural_summary_constant_output_detection(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        summary_map = behavioural_summary(toy_machine)
        assert summary_map[ack] == {NIL}  # ack only ever yields NIL


class TestStatistics:
    def test_trace_reduction_totals(self, toy_machine):
        reduction = trace_reduction(toy_machine, max_length=10)
        assert reduction.alphabet_size == 2
        assert reduction.total_traces == sum(2**k for k in range(1, 11))
        assert reduction.model_traces > 0
        assert reduction.reduction_factor > 1
        assert "reduction" in reduction.render()

    def test_paper_scale_reduction(self):
        # 7-symbol alphabet: the paper's 329,554,456 figure.
        alphabet = quic_alphabet()
        machine = MealyMachine(
            "q",
            alphabet,
            {("q", s): ("q", NIL) for s in alphabet},
            "trivial",
        )
        reduction = trace_reduction(machine, max_length=10)
        assert reduction.total_traces == 329_554_456


class TestVisualize:
    def test_transition_table_renders_all_states(self, toy_machine):
        text = transition_table(toy_machine)
        for state in toy_machine.states:
            assert str(state) in text

    def test_side_by_side_marks_differences(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        mutant = mutate_output(toy_machine, "s0", syn, NIL)
        text = side_by_side(toy_machine, mutant)
        assert "*" in text

    def test_summary(self, toy_machine):
        assert "3 states" in summary(toy_machine)

    def test_to_dot(self, toy_machine):
        assert to_dot(toy_machine).startswith("digraph")

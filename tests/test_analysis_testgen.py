"""Tests for model-based test generation and differential testing."""


from repro.adapter.mealy_sul import MealySUL
from repro.analysis.testgen import (
    differential_test,
    generate_test_suite,
)
from repro.core.alphabet import Alphabet, parse_tcp_symbol
from repro.core.mealy import MealyMachine


def mutate(machine, state, symbol, new_output):
    table = {
        (t.source, t.input): (t.target, t.output) for t in machine.transitions()
    }
    target, _ = table[(state, symbol)]
    table[(state, symbol)] = (target, new_output)
    return MealyMachine(machine.initial_state, machine.input_alphabet, table, "mutant")


class TestSuiteGeneration:
    def test_transition_cover_size(self, toy_machine):
        suite = generate_test_suite(toy_machine, "transition-cover")
        assert len(suite) == toy_machine.num_transitions

    def test_wmethod_suite_nonempty(self, toy_machine):
        suite = generate_test_suite(toy_machine, "wmethod")
        assert suite
        assert all(isinstance(w, tuple) for w in suite)

    def test_random_suite_is_seeded(self, toy_machine):
        a = generate_test_suite(toy_machine, "random", seed=1)
        b = generate_test_suite(toy_machine, "random", seed=1)
        c = generate_test_suite(toy_machine, "random", seed=2)
        assert a == b
        assert a != c


class TestSuiteEdgeCases:
    @staticmethod
    def empty_alphabet_machine() -> MealyMachine:
        return MealyMachine("s0", Alphabet.of([]), {}, name="mute")

    @staticmethod
    def single_state_machine() -> MealyMachine:
        symbol = parse_tcp_symbol("SYN(?,?,0)")
        nil = parse_tcp_symbol("NIL")
        return MealyMachine(
            "s0",
            Alphabet.of([symbol]),
            {("s0", symbol): ("s0", nil)},
            name="echo",
        )

    def test_empty_alphabet_yields_empty_suites(self):
        machine = self.empty_alphabet_machine()
        for kind in ("transition-cover", "wmethod", "random"):
            assert generate_test_suite(machine, kind) == []

    def test_single_state_transition_cover(self):
        machine = self.single_state_machine()
        suite = generate_test_suite(machine, "transition-cover")
        assert len(suite) == 1
        assert len(suite[0]) == 1

    def test_single_state_wmethod_nonempty_and_distinct(self):
        machine = self.single_state_machine()
        suite = generate_test_suite(machine, "wmethod")
        assert suite
        assert () not in suite
        assert len(suite) == len(set(suite))

    def test_extra_states_grow_the_wmethod_suite(self, toy_machine):
        sizes = [
            len(generate_test_suite(toy_machine, "wmethod", extra_states=k))
            for k in range(3)
        ]
        assert sizes[0] < sizes[1] < sizes[2]
        # Growth follows the middle sections Sigma^<=k: every word of the
        # smaller suite is still covered by some word of the larger one.
        smaller = set(generate_test_suite(toy_machine, "wmethod", extra_states=0))
        larger = set(generate_test_suite(toy_machine, "wmethod", extra_states=1))
        assert smaller <= larger

    def test_random_kind_seed_stability_across_parameters(self, toy_machine):
        base = generate_test_suite(
            toy_machine, "random", num_random=40, max_length=6, seed=9
        )
        again = generate_test_suite(
            toy_machine, "random", num_random=40, max_length=6, seed=9
        )
        assert base == again
        assert len(base) == 40
        assert all(1 <= len(word) <= 6 for word in base)
        assert all(
            symbol in toy_machine.input_alphabet
            for word in base
            for symbol in word
        )


class TestDifferentialTesting:
    def test_conforming_sul_passes(self, toy_machine):
        report = differential_test(toy_machine, MealySUL(toy_machine))
        assert report.conforms
        assert report.divergence_rate == 0.0

    def test_mutant_is_caught(self, toy_machine, ab_alphabet, out_symbols):
        syn, ack = ab_alphabet.symbols
        synack, _ = out_symbols
        mutant = mutate(toy_machine, "s1", ack, synack)
        report = differential_test(toy_machine, MealySUL(mutant))
        assert not report.conforms
        divergence = report.divergences[0]
        assert divergence.expected != divergence.actual
        assert "expected" in divergence.render()

    def test_max_divergences_caps_collection(self, toy_machine, ab_alphabet, out_symbols):
        syn, ack = ab_alphabet.symbols
        synack, _ = out_symbols
        mutant = mutate(toy_machine, "s0", ack, synack)
        suite = generate_test_suite(toy_machine, "random", num_random=50, seed=4)
        report = differential_test(
            toy_machine, MealySUL(mutant), suite, max_divergences=2
        )
        assert len(report.divergences) == 2

    def test_report_rendering(self, toy_machine, ab_alphabet, out_symbols):
        syn, ack = ab_alphabet.symbols
        synack, _ = out_symbols
        mutant = mutate(toy_machine, "s0", ack, synack)
        report = differential_test(toy_machine, MealySUL(mutant))
        text = report.render()
        assert "divergences" in text

"""Unit tests for the Oracle Table."""

import pytest

from repro.core.alphabet import TCPSymbol, parse_tcp_symbol
from repro.core.oracle_table import OracleTable

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["SYN", "ACK"])
NIL = parse_tcp_symbol("NIL")


@pytest.fixture
def table() -> OracleTable:
    table = OracleTable()
    table.record(
        (SYN, ACK),
        (SYNACK, NIL),
        [{"sn": 0}, {"sn": 1}],
        [{"an": 1}, {}],
    )
    return table


class TestRecording:
    def test_lookup_exact(self, table):
        entry = table.lookup((SYN, ACK))
        assert entry is not None
        assert entry.abstract.outputs == (SYNACK, NIL)
        assert entry.steps[0].output_params == {"an": 1}

    def test_lookup_missing(self, table):
        assert table.lookup((ACK,)) is None

    def test_contains(self, table):
        assert (SYN, ACK) in table
        assert (ACK, SYN) not in table

    def test_rerecord_overwrites(self, table):
        table.record((SYN, ACK), (SYNACK, SYNACK), [{}, {}], [{}, {}])
        assert table.lookup((SYN, ACK)).abstract.outputs == (SYNACK, SYNACK)
        assert len(table) == 1

    def test_mismatched_lengths_rejected(self, table):
        with pytest.raises(ValueError):
            table.record((SYN,), (SYNACK, NIL), [{}], [{}])


class TestPrefixLookup:
    def test_prefix_answered_from_longer_entry(self, table):
        outputs = table.lookup_output((SYN,))
        assert outputs == (SYNACK,)

    def test_exact_preferred(self, table):
        table.record((SYN,), (NIL,), [{}], [{}])
        assert table.lookup_output((SYN,)) == (NIL,)

    def test_missing_prefix(self, table):
        assert table.lookup_output((ACK, ACK)) is None


class TestEviction:
    def test_max_entries_evicts_oldest(self):
        table = OracleTable(max_entries=2)
        table.record((SYN,), (SYNACK,), [{}], [{}])
        table.record((ACK,), (NIL,), [{}], [{}])
        table.record((SYN, ACK), (SYNACK, NIL), [{}, {}], [{}, {}])
        assert len(table) == 2
        assert table.lookup((SYN,)) is None

    def test_concrete_traces_view(self, table):
        traces = table.concrete_traces()
        assert len(traces) == 1
        assert traces[0][0].input_params == {"sn": 0}

    def test_clear(self, table):
        table.clear()
        assert len(table) == 0

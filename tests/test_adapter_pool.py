"""Tests for the SUL pool: parallel fan-out behind the single-SUL interface."""

import pytest

from repro.adapter.mealy_sul import MealySUL
from repro.adapter.pool import BatchExecutor, SULPool
from repro.learn.teacher import SULMembershipOracle


def _pool_for(machine, workers):
    return SULPool(lambda: MealySUL(machine), workers=workers)


@pytest.fixture(params=["serial", "thread", "process"])
def any_backend(request):
    return request.param


class TestBatchExecutor:
    def test_preserves_order(self):
        executor = BatchExecutor(workers=4)
        try:
            assert executor.map(lambda x: x * x, list(range(20))) == [
                x * x for x in range(20)
            ]
        finally:
            executor.close()

    def test_single_worker_runs_without_threads(self):
        executor = BatchExecutor(workers=1)
        assert executor.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert executor._pool is None

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            BatchExecutor(workers=0)


class TestSULPool:
    def test_matches_single_sul(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        words = [(syn,), (syn, ack), (ack, syn, syn), (syn, ack, ack)]
        single = MealySUL(toy_machine)
        pool = _pool_for(toy_machine, workers=4)
        assert pool.query_batch(words) == [single.query(w) for w in words]
        pool.close()

    def test_deterministic_result_ordering(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        words = [(syn,) * n + (ack,) for n in range(12)]
        pool = _pool_for(toy_machine, workers=4)
        expected = [toy_machine.run(w) for w in words]
        for _ in range(3):  # repeated batches stay index-aligned
            assert pool.query_batch(words) == expected
        pool.close()

    def test_stats_are_merged_across_workers(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        words = [(syn, ack)] * 10
        pool = _pool_for(toy_machine, workers=3)
        pool.query_batch(words)
        assert pool.stats.queries == 10
        assert pool.stats.resets == 10
        assert pool.stats.steps == 20
        assert sum(pool.per_worker_queries()) == 10
        pool.close()

    def test_oracle_tables_are_merged(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        words = [(syn,), (syn, ack), (ack, ack)]
        pool = _pool_for(toy_machine, workers=2)
        pool.query_batch(words)
        for word in words:
            entry = pool.oracle_table.lookup(word)
            assert entry is not None
            assert entry.abstract.outputs == toy_machine.run(word)
        pool.close()

    def test_deterministic_shard_assignment(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        pool = _pool_for(toy_machine, workers=4)
        pool.query_batch([(syn,)] * 8)
        # Word i always runs on worker i mod n: a balanced batch loads
        # every worker equally, independent of thread timing.
        assert pool.per_worker_queries() == [2, 2, 2, 2]
        pool.close()

    def test_single_query_routes_through_pool(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        pool = _pool_for(toy_machine, workers=2)
        assert pool.query((syn, ack)) == toy_machine.run((syn, ack))
        assert pool.stats.queries == 1
        pool.close()

    def test_empty_batch(self, toy_machine):
        pool = _pool_for(toy_machine, workers=2)
        assert pool.query_batch([]) == []
        pool.close()

    def test_step_interface_for_random_walks(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        pool = _pool_for(toy_machine, workers=2)
        pool.reset()
        outputs = [pool.step(syn), pool.step(ack)]
        assert tuple(outputs) == toy_machine.run((syn, ack))
        pool.close()

    def test_rejects_zero_workers(self, toy_machine):
        with pytest.raises(ValueError):
            SULPool(lambda: MealySUL(toy_machine), workers=0)

    def test_behind_membership_oracle(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        pool = _pool_for(toy_machine, workers=4)
        oracle = SULMembershipOracle(pool)
        words = [(syn,), (syn, ack)]
        assert oracle.query_batch(words) == [toy_machine.run(w) for w in words]
        assert oracle.stats.queries == 2
        pool.close()


class TestSULPoolBackends:
    """Every executor backend answers and accounts like a single SUL.

    The toy-machine factory is a closure: fine for serial/thread, and for
    ``process`` it exercises the documented fork-start-method guarantee
    (Process args are inherited, not pickled).
    """

    def _pool(self, machine, backend, workers=4):
        pool = SULPool(
            lambda: MealySUL(machine), workers=workers, backend=backend
        )
        assert pool.backend == backend
        return pool

    def test_matches_single_sul(self, toy_machine, ab_alphabet, any_backend):
        syn, ack = ab_alphabet.symbols
        words = [(syn,), (syn, ack), (ack, syn, syn), (syn, ack, ack)]
        single = MealySUL(toy_machine)
        pool = self._pool(toy_machine, any_backend)
        assert pool.query_batch(words) == [single.query(w) for w in words]
        pool.close()

    def test_stats_and_load_balance(self, toy_machine, ab_alphabet, any_backend):
        syn, ack = ab_alphabet.symbols
        pool = self._pool(toy_machine, any_backend)
        pool.query_batch([(syn, ack)] * 8)
        assert pool.stats.queries == 8
        assert pool.stats.resets == 8
        assert pool.stats.steps == 16
        # word i -> worker i mod n, so a balanced batch loads all equally
        assert pool.per_worker_queries() == [2, 2, 2, 2]
        pool.close()

    def test_oracle_tables_are_merged(self, toy_machine, ab_alphabet, any_backend):
        syn, ack = ab_alphabet.symbols
        words = [(syn,), (syn, ack), (ack, ack)]
        pool = self._pool(toy_machine, any_backend, workers=2)
        pool.query_batch(words)
        for word in words:
            entry = pool.oracle_table.lookup(word)
            assert entry is not None
            assert entry.abstract.outputs == toy_machine.run(word)
        pool.close()

    def test_repeated_batches_stay_aligned(
        self, toy_machine, ab_alphabet, any_backend
    ):
        syn, ack = ab_alphabet.symbols
        words = [(syn,) * n + (ack,) for n in range(12)]
        pool = self._pool(toy_machine, any_backend)
        expected = [toy_machine.run(w) for w in words]
        for _ in range(3):
            assert pool.query_batch(words) == expected
        pool.close()

    def test_step_interface_runs_on_the_parent(
        self, toy_machine, ab_alphabet, any_backend
    ):
        syn, ack = ab_alphabet.symbols
        pool = self._pool(toy_machine, any_backend, workers=2)
        pool.reset()
        outputs = [pool.step(syn), pool.step(ack)]
        assert tuple(outputs) == toy_machine.run((syn, ack))
        assert pool.stats.steps == 2
        pool.close()

    def test_process_parent_and_worker_stats_accumulate(
        self, toy_machine, ab_alphabet
    ):
        syn, ack = ab_alphabet.symbols
        pool = self._pool(toy_machine, "process", workers=2)
        pool.query_batch([(syn,), (ack,)])
        pool.reset()
        pool.step(syn)
        assert pool.stats.queries == 2
        assert pool.stats.resets == 3  # 2 shipped from workers + 1 parent
        assert pool.stats.steps == 3
        pool.close()

"""Tests for the L* and TTT learners, incl. property-based ground truth."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adapter.mealy_sul import MealySUL
from repro.analysis.equivalence import equivalent
from repro.core.alphabet import Alphabet, TCPSymbol
from repro.core.mealy import MealyMachine
from repro.learn.cache import CachedMembershipOracle
from repro.learn.counterexample import rivest_schapire
from repro.learn.equivalence import (
    ChainedEquivalenceOracle,
    FixedWordsEquivalenceOracle,
    PerfectEquivalenceOracle,
    RandomWordEquivalenceOracle,
    WMethodEquivalenceOracle,
)
from repro.learn.lstar import LStarLearner
from repro.learn.observation_table import ObservationTable
from repro.learn.teacher import SULMembershipOracle
from repro.learn.ttt import TTTLearner

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["SYN", "ACK"])
NIL = TCPSymbol(label="NIL")
RST = TCPSymbol(label="RST(?,?,0)")



class TestObservationTable:
    def test_initial_table_not_closed_for_toy(self, toy_machine, cached_oracle_for):
        oracle = cached_oracle_for(toy_machine)
        table = ObservationTable(toy_machine.input_alphabet, oracle)
        assert table.find_unclosed() is not None

    def test_hypothesis_after_stabilize(self, toy_machine, cached_oracle_for):
        oracle = cached_oracle_for(toy_machine)
        table = ObservationTable(toy_machine.input_alphabet, oracle)
        LStarLearner._stabilize(table)
        hypothesis = table.to_hypothesis()
        assert hypothesis.num_states >= 1


class TestLStar:
    def test_learns_toy_machine_exactly(self, toy_machine, cached_oracle_for):
        oracle = cached_oracle_for(toy_machine)
        learner = LStarLearner(oracle, WMethodEquivalenceOracle(oracle, 1))
        result = learner.learn()
        assert result.model.num_states == 3
        assert equivalent(result.model, toy_machine)


class TestTTT:
    def test_learns_toy_machine_exactly(self, toy_machine, cached_oracle_for):
        oracle = cached_oracle_for(toy_machine)
        learner = TTTLearner(oracle, WMethodEquivalenceOracle(oracle, 1))
        result = learner.learn()
        assert result.model.num_states == 3
        assert equivalent(result.model, toy_machine)

    def test_ttt_uses_fewer_sul_queries_than_lstar(self, toy_machine):
        ttt_sul = MealySUL(toy_machine)
        ttt_oracle = CachedMembershipOracle(SULMembershipOracle(ttt_sul))
        TTTLearner(ttt_oracle, WMethodEquivalenceOracle(ttt_oracle, 1)).learn()

        lstar_sul = MealySUL(toy_machine)
        lstar_oracle = CachedMembershipOracle(SULMembershipOracle(lstar_sul))
        LStarLearner(lstar_oracle, WMethodEquivalenceOracle(lstar_oracle, 1)).learn()

        assert ttt_sul.stats.queries <= lstar_sul.stats.queries


class TestRivestSchapire:
    def test_decomposition_points_at_divergence(self, toy_machine, ab_alphabet, cached_oracle_for):
        syn, ack = ab_alphabet.symbols
        # A wrong hypothesis: single state echoing NIL for everything.
        transitions = {
            ("q", syn): ("q", NIL),
            ("q", ack): ("q", NIL),
        }
        hypothesis = MealyMachine("q", ab_alphabet, transitions, "wrong")
        oracle = cached_oracle_for(toy_machine)
        cex = (syn,)
        decomposition = rivest_schapire(
            oracle, hypothesis, cex, access_of={"q": ()}
        )
        assert decomposition.prefix == ()
        assert decomposition.symbol == syn

    def test_non_counterexample_rejected(self, toy_machine, cached_oracle_for):
        oracle = cached_oracle_for(toy_machine)
        with pytest.raises(ValueError):
            rivest_schapire(oracle, toy_machine, (SYN,))


class TestEquivalenceOracles:
    def test_wmethod_finds_difference(self, toy_machine, ab_alphabet, cached_oracle_for):
        syn, ack = ab_alphabet.symbols
        oracle = cached_oracle_for(toy_machine)
        # Hypothesis that never leaves s0.
        transitions = {
            ("q", syn): ("q", SYNACK),
            ("q", ack): ("q", NIL),
        }
        hypothesis = MealyMachine("q", ab_alphabet, transitions)
        cex = WMethodEquivalenceOracle(oracle, 1).find_counterexample(hypothesis)
        assert cex is not None
        assert oracle.query(cex) != hypothesis.run(cex)

    def test_wmethod_passes_equivalent(self, toy_machine, cached_oracle_for):
        oracle = cached_oracle_for(toy_machine)
        assert WMethodEquivalenceOracle(oracle, 1).find_counterexample(
            toy_machine
        ) is None

    def test_counterexamples_are_minimal(self, toy_machine, ab_alphabet, cached_oracle_for):
        syn, ack = ab_alphabet.symbols
        oracle = cached_oracle_for(toy_machine)
        transitions = {
            ("q", syn): ("q", SYNACK),
            ("q", ack): ("q", NIL),
        }
        hypothesis = MealyMachine("q", ab_alphabet, transitions)
        cex = RandomWordEquivalenceOracle(oracle, num_words=200, seed=1).find_counterexample(
            hypothesis
        )
        assert cex is not None
        # Shrunk: every proper prefix agrees.
        prefix = cex[:-1]
        assert oracle.query(prefix) == hypothesis.run(prefix)

    def test_fixed_words_oracle(self, toy_machine, ab_alphabet, cached_oracle_for):
        syn, ack = ab_alphabet.symbols
        oracle = cached_oracle_for(toy_machine)
        eq = FixedWordsEquivalenceOracle(oracle, [(syn, ack)])
        assert eq.find_counterexample(toy_machine) is None

    def test_chained_oracle_falls_through(self, toy_machine, cached_oracle_for):
        oracle = cached_oracle_for(toy_machine)
        chained = ChainedEquivalenceOracle(
            [
                RandomWordEquivalenceOracle(oracle, num_words=5, seed=2),
                WMethodEquivalenceOracle(oracle, 1),
            ]
        )
        assert chained.find_counterexample(toy_machine) is None


# ---------------------------------------------------------------------------
# Property-based: TTT with a perfect oracle recovers any random machine
# ---------------------------------------------------------------------------

_SYMS = [SYN, ACK]
_OUTS = [SYNACK, NIL, RST]


@st.composite
def random_machine(draw):
    num_states = draw(st.integers(min_value=1, max_value=7))
    alphabet = Alphabet.of(_SYMS)
    table = {}
    for state in range(num_states):
        for symbol in _SYMS:
            target = draw(st.integers(min_value=0, max_value=num_states - 1))
            output = draw(st.sampled_from(_OUTS))
            table[(state, symbol)] = (target, output)
    return MealyMachine(0, alphabet, table, "random")


@given(random_machine())
@settings(max_examples=40, deadline=None)
def test_ttt_recovers_random_machines(cached_oracle_for, machine):
    oracle = cached_oracle_for(machine)
    learner = TTTLearner(oracle, PerfectEquivalenceOracle(machine))
    result = learner.learn()
    assert equivalent(result.model, machine)
    assert result.model.num_states == machine.minimize().num_states


@given(random_machine())
@settings(max_examples=25, deadline=None)
def test_lstar_recovers_random_machines(cached_oracle_for, machine):
    oracle = cached_oracle_for(machine)
    learner = LStarLearner(oracle, PerfectEquivalenceOracle(machine))
    result = learner.learn()
    assert equivalent(result.model, machine)

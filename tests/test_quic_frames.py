"""Unit and property tests for QUIC frame codecs (all 20 frame types)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alphabet import QUIC_FRAME_TYPES
from repro.quic.frames import (
    AckFrame,
    AckRange,
    ConnectionCloseFrame,
    CryptoFrame,
    DataBlockedFrame,
    Frame,
    FrameError,
    HandshakeDoneFrame,
    MaxDataFrame,
    MaxStreamDataFrame,
    MaxStreamsFrame,
    NewConnectionIdFrame,
    NewTokenFrame,
    PaddingFrame,
    PathChallengeFrame,
    PathResponseFrame,
    PingFrame,
    ResetStreamFrame,
    StopSendingFrame,
    StreamDataBlockedFrame,
    StreamFrame,
    StreamsBlockedFrame,
    decode_frames,
    encode_frames,
    frame_kinds,
)

ALL_EXAMPLE_FRAMES: list[Frame] = [
    PaddingFrame(length=3),
    PingFrame(),
    AckFrame(largest_acknowledged=9, ack_delay=1, ranges=(AckRange(7, 9), AckRange(1, 3))),
    ResetStreamFrame(stream_id=4, error_code=1, final_size=100),
    StopSendingFrame(stream_id=4, error_code=2),
    CryptoFrame(offset=10, data=b"hello"),
    NewTokenFrame(token=b"tok"),
    StreamFrame(stream_id=0, offset=5, data=b"data", fin=True),
    MaxDataFrame(maximum_data=1000),
    MaxStreamDataFrame(stream_id=0, maximum_stream_data=400),
    MaxStreamsFrame(maximum_streams=8, bidirectional=True),
    DataBlockedFrame(limit=1000),
    StreamDataBlockedFrame(stream_id=0, maximum_stream_data=100),
    StreamsBlockedFrame(limit=8, bidirectional=False),
    NewConnectionIdFrame(
        sequence_number=1,
        retire_prior_to=0,
        connection_id=b"\x01" * 8,
        stateless_reset_token=b"\x02" * 16,
    ),
    # RETIRE_CONNECTION_ID, PATH_CHALLENGE, PATH_RESPONSE below
    PathChallengeFrame(data=b"\x03" * 8),
    PathResponseFrame(data=b"\x04" * 8),
    ConnectionCloseFrame(error_code=10, frame_type=0, reason=b"violation"),
    ConnectionCloseFrame(error_code=3, reason=b"app", application_close=True),
    HandshakeDoneFrame(),
]


class TestRoundtrip:
    @pytest.mark.parametrize("frame", ALL_EXAMPLE_FRAMES, ids=lambda f: f.kind)
    def test_each_frame_roundtrips(self, frame):
        decoded = decode_frames(encode_frames([frame]))
        assert len(decoded) == 1
        assert decoded[0] == frame

    def test_sequence_roundtrip(self):
        frames = [f for f in ALL_EXAMPLE_FRAMES if f.kind != "PADDING"]
        assert decode_frames(encode_frames(frames)) == frames

    def test_all_twenty_kinds_constructible(self):
        from repro.quic.frames import RetireConnectionIdFrame

        kinds = {f.kind for f in ALL_EXAMPLE_FRAMES}
        kinds.add(RetireConnectionIdFrame(sequence_number=1).kind)
        assert kinds == set(QUIC_FRAME_TYPES)

    def test_retire_connection_id_roundtrip(self):
        from repro.quic.frames import RetireConnectionIdFrame

        frame = RetireConnectionIdFrame(sequence_number=3)
        assert decode_frames(encode_frames([frame])) == [frame]


class TestAck:
    def test_acknowledges(self):
        frame = AckFrame(9, 0, (AckRange(7, 9), AckRange(1, 3)))
        assert frame.acknowledges(8)
        assert frame.acknowledges(1)
        assert not frame.acknowledges(5)

    def test_empty_ranges_rejected_on_encode(self):
        from repro.quic.varint import Buffer

        with pytest.raises(FrameError):
            AckFrame(0, 0, ()).encode(Buffer())

    def test_bad_range_rejected(self):
        with pytest.raises(FrameError):
            AckRange(5, 3)


class TestValidation:
    def test_unknown_frame_type(self):
        with pytest.raises(FrameError):
            decode_frames(b"\x3f")

    def test_truncated_frame(self):
        wire = encode_frames([CryptoFrame(offset=0, data=b"abcdef")])
        with pytest.raises(FrameError):
            decode_frames(wire[:-3])

    def test_new_token_requires_token(self):
        from repro.quic.varint import Buffer

        with pytest.raises(FrameError):
            NewTokenFrame(token=b"").encode(Buffer())

    def test_frame_kinds_sorted_unique(self):
        kinds = frame_kinds([PingFrame(), PingFrame(), CryptoFrame()])
        assert kinds == ("CRYPTO", "PING")


@given(
    stream_id=st.integers(0, 2**20),
    offset=st.integers(0, 2**20),
    data=st.binary(max_size=100),
    fin=st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_stream_frame_roundtrip(stream_id, offset, data, fin):
    frame = StreamFrame(stream_id=stream_id, offset=offset, data=data, fin=fin)
    assert decode_frames(encode_frames([frame])) == [frame]


@given(
    largest=st.integers(0, 2**16),
    spans=st.lists(st.tuples(st.integers(0, 50), st.integers(2, 50)), max_size=4),
)
@settings(max_examples=150, deadline=None)
def test_ack_frame_roundtrip(largest, spans):
    # Build non-overlapping descending ranges from (span, gap) pairs.
    ranges = []
    cursor = largest
    for span, gap in spans:
        if cursor < 0:
            break
        smallest = max(0, cursor - span)
        ranges.append(AckRange(smallest, cursor))
        cursor = smallest - gap - 2
    if not ranges or ranges[0].largest != largest:
        ranges = [AckRange(largest, largest)] + ranges[1:]
    frame = AckFrame(largest_acknowledged=largest, ack_delay=0, ranges=tuple(ranges))
    decoded = decode_frames(encode_frames([frame]))
    assert decoded == [frame]

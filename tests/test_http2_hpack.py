"""Tests for the static-table HPACK codec: primitives and round-trips."""

import pytest

from repro.http2.hpack import (
    HPACKDecoder,
    HPACKEncoder,
    HPACKError,
    STATIC_TABLE,
    decode_integer,
    decode_string,
    encode_integer,
    encode_string,
)


class TestIntegerCodec:
    @pytest.mark.parametrize("value", [0, 1, 30, 31, 32, 127, 128, 1337, 100_000])
    @pytest.mark.parametrize("prefix", [4, 5, 7])
    def test_roundtrip(self, value, prefix):
        wire = encode_integer(value, prefix)
        decoded, offset = decode_integer(bytes(wire), 0, prefix)
        assert decoded == value
        assert offset == len(wire)

    def test_rfc_example_1337_with_5bit_prefix(self):
        # RFC 7541 C.1.2: 1337 with a 5-bit prefix is 1f 9a 0a.
        assert bytes(encode_integer(1337, 5)) == b"\x1f\x9a\x0a"

    def test_truncated_integer_raises(self):
        with pytest.raises(HPACKError):
            decode_integer(b"\x1f", 0, 5)  # continuation octets missing

    def test_negative_rejected(self):
        with pytest.raises(HPACKError):
            encode_integer(-1, 7)


class TestStringCodec:
    def test_roundtrip(self):
        wire = bytes(encode_string("custom-value"))
        text, offset = decode_string(wire, 0)
        assert text == "custom-value"
        assert offset == len(wire)

    def test_huffman_bit_rejected(self):
        with pytest.raises(HPACKError):
            decode_string(b"\x81\x00", 0)

    def test_overrun_rejected(self):
        with pytest.raises(HPACKError):
            decode_string(b"\x05ab", 0)  # claims 5 octets, has 2


class TestHeaderBlocks:
    def test_static_table_has_61_entries(self):
        assert len(STATIC_TABLE) == 61
        assert STATIC_TABLE[1] == (":method", "GET")
        assert STATIC_TABLE[60] == ("www-authenticate", "")

    def test_fully_indexed_request(self):
        # All four pseudo-header fields fully match static entries, so the
        # block is exactly one indexed octet per header.
        headers = [(":method", "GET"), (":path", "/"), (":scheme", "http")]
        block = HPACKEncoder().encode(headers)
        assert block == b"\x82\x84\x86"
        assert HPACKDecoder().decode(block) == headers

    def test_name_match_value_literal(self):
        headers = [(":status", "418")]
        block = HPACKEncoder().encode(headers)
        assert block[0] == 0x08  # literal w/o indexing, name index 8
        assert HPACKDecoder().decode(block) == headers

    def test_unknown_name_fully_literal(self):
        headers = [("x-prognosis", "closed-box")]
        block = HPACKEncoder().encode(headers)
        assert block[0] == 0x00
        assert HPACKDecoder().decode(block) == headers

    def test_mixed_block_roundtrip(self):
        headers = [
            (":method", "POST"),
            (":path", "/learn"),
            ("content-type", "application/json"),
            ("x-seed", "9"),
        ]
        assert HPACKDecoder().decode(HPACKEncoder().encode(headers)) == headers

    def test_incremental_indexing_rejected(self):
        with pytest.raises(HPACKError):
            HPACKDecoder().decode(b"\x42\x03abc")  # '01' pattern: dynamic table

    def test_table_size_update_rejected(self):
        with pytest.raises(HPACKError):
            HPACKDecoder().decode(b"\x3f\xe1\x1f")

    def test_index_beyond_static_table_rejected(self):
        with pytest.raises(HPACKError):
            HPACKDecoder().decode(bytes([0x80 | 62]))

    def test_index_zero_rejected(self):
        with pytest.raises(HPACKError):
            HPACKDecoder().decode(b"\x80")

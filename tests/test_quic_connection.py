"""Integration tests: QUIC servers + tracker client over the simulated net."""

import pytest

from repro.netsim import SimulatedNetwork
from repro.quic.impls.google import google_server
from repro.quic.impls.mvfst import mvfst_server
from repro.quic.impls.quiche import quiche_server
from repro.quic.impls.tracker import TrackerClient, TrackerConfig


@pytest.fixture
def google_stack():
    network = SimulatedNetwork()
    server = google_server(network)
    client = TrackerClient(network, server.endpoint.address)
    return network, server, client


@pytest.fixture
def quiche_stack():
    network = SimulatedNetwork()
    server = quiche_server(network)
    client = TrackerClient(network, server.endpoint.address)
    return network, server, client


def kinds_of(packets):
    return sorted((p.packet_type, p.kinds()) for p in packets)


class TestHandshake:
    def test_google_full_flight(self, google_stack):
        _, _, client = google_stack
        _, responses = client.exchange("INITIAL", ("CRYPTO",))
        assert kinds_of(responses) == [
            ("HANDSHAKE", ("CRYPTO",)),
            ("HANDSHAKE", ("CRYPTO",)),
            ("INITIAL", ("ACK", "CRYPTO")),
            ("SHORT", ("STREAM",)),
        ]
        assert client.handshake_keys is not None
        assert client.application_keys is not None

    def test_quiche_flight_has_no_push(self, quiche_stack):
        _, _, client = quiche_stack
        _, responses = client.exchange("INITIAL", ("CRYPTO",))
        assert ("SHORT", ("STREAM",)) not in kinds_of(responses)

    def test_finished_completes_handshake(self, google_stack):
        _, _, client = google_stack
        client.exchange("INITIAL", ("CRYPTO",))
        _, responses = client.exchange("HANDSHAKE", ("ACK", "CRYPTO"))
        assert client.handshake_complete
        assert ("SHORT", ("HANDSHAKE_DONE",)) in kinds_of(responses)

    def test_short_before_keys_is_dropped(self, google_stack):
        _, server, client = google_stack
        _, responses = client.exchange("SHORT", ("ACK", "STREAM"))
        assert responses == []
        assert server.connection is None

    def test_handshake_before_hello_dropped(self, google_stack):
        _, _, client = google_stack
        _, responses = client.exchange("HANDSHAKE", ("ACK", "CRYPTO"))
        assert responses == []


class TestPacketNumbers:
    def test_server_packet_numbers_increase(self, google_stack):
        _, _, client = google_stack
        _, flight = client.exchange("INITIAL", ("CRYPTO",))
        client.exchange("HANDSHAKE", ("ACK", "CRYPTO"))
        _, acked = client.exchange("SHORT", ("ACK", "STREAM"))
        shorts = [p for p in flight + acked if p.packet_type == "SHORT"]
        numbers = [p.header.packet_number for p in shorts]
        assert numbers == sorted(numbers)
        assert len(set(numbers)) == len(numbers)

    def test_duplicate_client_packet_ignored(self, google_stack):
        network, server, client = google_stack
        header, _ = client.build_packet("INITIAL", ("CRYPTO",))
        from repro.quic.packet import encode_packet

        client._active_endpoint.send(encode_packet(header), server.endpoint.address)
        client._active_endpoint.send(encode_packet(header), server.endpoint.address)
        network.run()
        # one response flight only: 4 packets, not 8
        assert len(client._active_endpoint.receive_all()) == 4


class TestClose:
    def test_client_hsdone_closes_connection(self, google_stack):
        _, _, client = google_stack
        client.exchange("INITIAL", ("CRYPTO",))
        _, responses = client.exchange("HANDSHAKE", ("ACK", "HANDSHAKE_DONE"))
        assert client.closed
        assert any("CONNECTION_CLOSE" in p.kinds() for p in responses)

    def test_quiche_close_is_single_packet(self, quiche_stack):
        _, _, client = quiche_stack
        client.exchange("INITIAL", ("CRYPTO",))
        _, responses = client.exchange("HANDSHAKE", ("ACK", "HANDSHAKE_DONE"))
        assert kinds_of(responses) == [("HANDSHAKE", ("CONNECTION_CLOSE",))]


class TestMvfstFlakiness:
    def test_reset_rate_near_eighty_two_percent(self):
        network = SimulatedNetwork()
        server = mvfst_server(network, seed=99)
        client = TrackerClient(network, server.endpoint.address)
        resets = 0
        trials = 120
        for _ in range(trials):
            server.reset()
            client.reset()
            client.exchange("INITIAL", ("CRYPTO",))
            client.exchange("HANDSHAKE", ("ACK", "HANDSHAKE_DONE"))
            _, responses = client.exchange("SHORT", ("ACK", "HANDSHAKE_DONE"))
            if any(p.packet_type == "STATELESS_RESET" for p in responses):
                resets += 1
        assert 0.70 < resets / trials < 0.94

    def test_deterministic_reset_probability_one(self):
        network = SimulatedNetwork()
        server = mvfst_server(network, seed=99, reset_probability=1.0)
        client = TrackerClient(network, server.endpoint.address)
        client.exchange("INITIAL", ("CRYPTO",))
        client.exchange("HANDSHAKE", ("ACK", "HANDSHAKE_DONE"))
        for _ in range(5):
            _, responses = client.exchange("SHORT", ("ACK", "HANDSHAKE_DONE"))
            assert any(p.packet_type == "STATELESS_RESET" for p in responses)


class TestRetry:
    def test_retry_round_trip_establishes(self):
        network = SimulatedNetwork()
        server = quiche_server(network, retry_enabled=True)
        client = TrackerClient(
            network,
            server.endpoint.address,
            config=TrackerConfig(reset_pn_spaces_on_retry=False),
        )
        _, responses = client.exchange("INITIAL", ("CRYPTO",))
        types = [p.packet_type for p in responses]
        assert "RETRY" in types
        assert "INITIAL" in types  # the post-retry server flight

    def test_strict_server_aborts_on_pn_reset(self):
        network = SimulatedNetwork()
        server = google_server(network, retry_enabled=True)
        client = TrackerClient(
            network,
            server.endpoint.address,
            config=TrackerConfig(reset_pn_spaces_on_retry=True),
        )
        _, responses = client.exchange("INITIAL", ("CRYPTO",))
        assert any("CONNECTION_CLOSE" in p.kinds() for p in responses)

    def test_port_bug_prevents_establishment(self):
        network = SimulatedNetwork()
        server = quiche_server(network, retry_enabled=True)
        client = TrackerClient(
            network,
            server.endpoint.address,
            config=TrackerConfig(retry_port_bug=True, reset_pn_spaces_on_retry=False),
        )
        _, responses = client.exchange("INITIAL", ("CRYPTO",))
        assert [p.packet_type for p in responses] == ["RETRY"]
        assert server.connection is None


class TestReset:
    def test_fresh_connection_after_reset(self, google_stack):
        _, server, client = google_stack
        client.exchange("INITIAL", ("CRYPTO",))
        first_scid = server.connection.scid
        server.reset()
        client.reset()
        client.exchange("INITIAL", ("CRYPTO",))
        assert server.connection.scid != first_scid

"""Tests for the HTTP/3 property suite against learned models."""

import pytest

from repro.analysis.h3_properties import (
    STANDARD_PROPERTIES,
    check_request_stream_ids,
    data_after_headers_per_stream,
    goaway_drain_rejects_new,
    request_stream_id_violations,
)
from repro.analysis.property_api import Verdict
from repro.core.alphabet import parse_h3_output, parse_h3_symbol
from repro.core.oracle_table import OracleTable
from repro.core.trace import IOTrace
from repro.experiments import learn_http3
from repro.registry import resolve_property_suite


@pytest.fixture(scope="module")
def conformant():
    experiment = learn_http3()
    yield experiment
    experiment.close()


@pytest.fixture(scope="module")
def buggy():
    experiment = learn_http3(goaway_teardown_bug=True)
    yield experiment
    experiment.close()


def run_suite(experiment, depth=4):
    return experiment.prognosis.check_properties(experiment.model, depth=depth)


def trace(*steps):
    """Build an abstract IOTrace from ``"HEADERS[FIN]/{RST}"`` steps."""
    inputs = []
    outputs = []
    for step in steps:
        text_in, text_out = step.split("/")
        inputs.append(parse_h3_symbol(text_in))
        outputs.append(parse_h3_output(text_out))
    return IOTrace(tuple(inputs), tuple(outputs))


class TestSuiteDefinition:
    def test_registered_for_both_servers_by_stem(self):
        assert resolve_property_suite("http3") == STANDARD_PROPERTIES
        assert resolve_property_suite("http3-buggy") == STANDARD_PROPERTIES

    def test_stream_id_check_is_oracle_kind(self):
        kinds = {p.name: p.kind for p in STANDARD_PROPERTIES}
        assert kinds["request-stream-ids-ordered"] == "oracle"


class TestConformantServer:
    def test_all_properties_hold(self, conformant):
        report = run_suite(conformant)
        assert all(v.holds for v in report), report.render()

    def test_request_stream_ids_ordered(self, conformant):
        oracle_table = conformant.prognosis.sul.oracle_table
        assert len(oracle_table) > 0
        assert check_request_stream_ids(oracle_table)

    def test_oracle_check_skipped_without_table(self, conformant):
        from repro.analysis.property_api import check_properties

        report = check_properties(conformant.model, STANDARD_PROPERTIES)
        verdict = report.verdict("request-stream-ids-ordered")
        assert verdict.verdict == Verdict.SKIPPED


class TestBuggyServer:
    def test_quirk_flagged_by_drain_property(self, buggy):
        """Acceptance: the GOAWAY-teardown quirk is caught by a named
        property with a ddmin-minimized 3-symbol witness."""
        report = run_suite(buggy)
        violated = report.verdict("goaway-drain-rejects-new")
        assert violated.verdict == Verdict.VIOLATED
        assert violated.minimized
        assert len(violated.witness) <= 3
        assert "HEADERS[FIN]/{}" in violated.witness.render()

    def test_other_properties_still_hold(self, buggy):
        report = run_suite(buggy)
        holding = {v.property.name for v in report if v.holds}
        assert holding == {
            "data-after-headers-per-stream",
            "settings-draws-settings",
            "second-settings-errors",
            "request-stream-ids-ordered",
        }


class TestDrainPredicate:
    """The abstract drain tracking, step by step."""

    def test_new_request_after_drain_must_be_answered(self):
        assert not goaway_drain_rejects_new(
            trace("SETTINGS/{SETTINGS}", "GOAWAY/{GOAWAY}", "HEADERS[FIN]/{}")
        )
        assert goaway_drain_rejects_new(
            trace("SETTINGS/{SETTINGS}", "GOAWAY/{GOAWAY}", "HEADERS[FIN]/{RST}")
        )

    def test_trailers_on_open_stream_may_stay_silent(self):
        # HEADERS without FIN leaves the request stream open; a later
        # HEADERS continues *that* stream, so silence is legitimate.
        assert goaway_drain_rejects_new(
            trace(
                "SETTINGS/{SETTINGS}",
                "HEADERS/{}",
                "GOAWAY/{GOAWAY}",
                "HEADERS/{}",
            )
        )

    def test_cancel_closes_the_open_stream(self):
        # After CANCEL the next HEADERS opens a *new* stream and must
        # draw a response.
        assert not goaway_drain_rejects_new(
            trace(
                "SETTINGS/{SETTINGS}",
                "HEADERS/{}",
                "CANCEL/{RST}",
                "GOAWAY/{GOAWAY}",
                "HEADERS/{}",
            )
        )

    def test_goaway_before_settings_is_not_a_drain(self):
        # GOAWAY on an unconfigured connection is H3_MISSING_SETTINGS,
        # not a graceful drain; later silence is out of scope.
        assert goaway_drain_rejects_new(
            trace("GOAWAY/{GOAWAY}", "HEADERS[FIN]/{}")
        )

    def test_post_drain_connection_error_stops_the_check(self):
        # A second SETTINGS after the drain is a connection error; the
        # connection is gone, so subsequent silence is legitimate.
        assert goaway_drain_rejects_new(
            trace(
                "SETTINGS/{SETTINGS}",
                "GOAWAY/{GOAWAY}",
                "SETTINGS/{GOAWAY}",
                "HEADERS[FIN]/{}",
            )
        )


class TestResponseShapePredicate:
    def test_data_before_headers_flagged(self):
        assert not data_after_headers_per_stream(
            trace("HEADERS[FIN]/{DATA+HEADERS[FIN]}")
        )

    def test_data_without_headers_flagged(self):
        assert not data_after_headers_per_stream(trace("HEADERS[FIN]/{DATA}"))

    def test_per_stream_isolation(self):
        # HEADERS then DATA on each stream is fine even interleaved.
        assert data_after_headers_per_stream(
            trace("HEADERS[FIN]/{HEADERS+DATA[FIN],RST}")
        )


class TestRequestStreamIdCheck:
    def word(self, count):
        return tuple(
            parse_h3_symbol("HEADERS[FIN]") for _ in range(count)
        )

    def record(self, table, sids):
        outputs = tuple(
            parse_h3_output("{HEADERS+DATA[FIN]}") for _ in sids
        )
        table.record(
            self.word(len(sids)),
            outputs,
            [{"sid": sid} for sid in sids],
            [{} for _ in sids],
        )

    def test_decreasing_ids_flagged(self):
        table = OracleTable()
        self.record(table, [4, 0])
        violations = request_stream_id_violations(table)
        assert len(violations) == 1
        assert violations[0][1] == 1  # the offending step index

    def test_non_multiple_of_four_flagged(self):
        table = OracleTable()
        self.record(table, [2])
        assert not check_request_stream_ids(table)

    def test_repeated_id_means_the_open_stream(self):
        table = OracleTable()
        self.record(table, [0, 0, 4])
        assert check_request_stream_ids(table)

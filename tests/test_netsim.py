"""Unit tests for the simulated network substrate."""

import pytest

from repro.netsim import (
    LinkConfig,
    NetworkError,
    SimulatedNetwork,
    VirtualClock,
)


class TestVirtualClock:
    def test_monotonic_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_advance_to_never_goes_back(self):
        clock = VirtualClock(start=10)
        clock.advance_to(5)
        assert clock.now == 10


class TestLinkConfig:
    def test_rejects_bad_loss_rate(self):
        with pytest.raises(ValueError):
            LinkConfig(loss_rate=1.5)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LinkConfig(latency=-1)


class TestBinding:
    def test_bind_and_send(self):
        network = SimulatedNetwork()
        a = network.bind("hostA", 1000)
        b = network.bind("hostB", 2000)
        a.send(b"hello", b.address)
        network.run()
        datagram = b.receive()
        assert datagram is not None
        assert datagram.payload == b"hello"
        assert datagram.source == a.address

    def test_double_bind_rejected(self):
        network = SimulatedNetwork()
        network.bind("h", 1)
        with pytest.raises(NetworkError):
            network.bind("h", 1)

    def test_ephemeral_ports_unique(self):
        network = SimulatedNetwork()
        ports = {network.bind("h").address[1] for _ in range(100)}
        assert len(ports) == 100

    def test_random_port_endpoint_is_ephemeral(self):
        network = SimulatedNetwork()
        endpoint = network.random_port_endpoint("h")
        assert endpoint.address[1] >= 49152

    def test_closed_endpoint_cannot_send(self):
        network = SimulatedNetwork()
        a = network.bind("h", 1)
        a.close()
        with pytest.raises(NetworkError):
            a.send(b"x", ("h", 2))

    def test_port_reusable_after_close(self):
        network = SimulatedNetwork()
        a = network.bind("h", 1)
        a.close()
        network.bind("h", 1)  # must not raise


class TestDelivery:
    def test_handler_invoked_synchronously(self):
        network = SimulatedNetwork()
        server = network.bind("server", 80)
        client = network.bind("client", 1234)
        received = []

        def echo(datagram):
            received.append(datagram.payload)
            server.send(b"re:" + datagram.payload, datagram.source)

        server.handler = echo
        client.send(b"ping", server.address)
        network.run()
        assert received == [b"ping"]
        assert client.receive().payload == b"re:ping"

    def test_send_to_unbound_address_is_dropped(self):
        network = SimulatedNetwork()
        a = network.bind("h", 1)
        a.send(b"x", ("nowhere", 9))
        network.run()
        assert network.stats["lost"] == 1

    def test_clock_advances_with_latency(self):
        network = SimulatedNetwork(config=LinkConfig(latency=0.25))
        a = network.bind("h", 1)
        b = network.bind("h", 2)
        a.send(b"x", b.address)
        network.run()
        assert network.clock.now >= 0.25

    def test_runaway_ping_pong_detected(self):
        network = SimulatedNetwork()
        a = network.bind("h", 1)
        b = network.bind("h", 2)
        a.handler = lambda d: a.send(b"x", b.address)
        b.handler = lambda d: b.send(b"x", a.address)
        a.send(b"x", b.address)
        with pytest.raises(NetworkError):
            network.run(max_events=100)


class TestImpairments:
    def test_loss_drops_packets(self):
        network = SimulatedNetwork(seed=1, config=LinkConfig(loss_rate=0.5))
        a = network.bind("h", 1)
        b = network.bind("h", 2)
        for _ in range(200):
            a.send(b"x", b.address)
        network.run()
        delivered = len(b.receive_all())
        assert 50 < delivered < 150  # roughly half, seeded

    def test_duplication(self):
        network = SimulatedNetwork(seed=2, config=LinkConfig(duplicate_rate=0.99))
        a = network.bind("h", 1)
        b = network.bind("h", 2)
        a.send(b"x", b.address)
        network.run()
        assert len(b.receive_all()) == 2

    def test_determinism_with_same_seed(self):
        def run(seed):
            network = SimulatedNetwork(seed=seed, config=LinkConfig(loss_rate=0.3))
            a = network.bind("h", 1)
            b = network.bind("h", 2)
            for i in range(50):
                a.send(bytes([i]), b.address)
            network.run()
            return [d.payload for d in b.receive_all()]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_drop_next_kills_exactly_n_datagrams(self):
        # Deterministic imperative loss, independent of the link config.
        network = SimulatedNetwork()  # perfect link
        a = network.bind("h", 1)
        b = network.bind("h", 2)
        network.drop_next(2)
        for i in range(4):
            a.send(bytes([i]), b.address)
        network.run()
        assert [d.payload for d in b.receive_all()] == [b"\x02", b"\x03"]
        assert network.stats["lost"] == 2
        assert network.stats["sent"] == 4

    def test_drop_next_accumulates_and_rejects_negatives(self):
        network = SimulatedNetwork()
        a = network.bind("h", 1)
        b = network.bind("h", 2)
        network.drop_next()
        network.drop_next()  # repeated calls accumulate
        for i in range(3):
            a.send(bytes([i]), b.address)
        network.run()
        assert [d.payload for d in b.receive_all()] == [b"\x02"]
        with pytest.raises(ValueError):
            network.drop_next(-1)

    def test_jitter_can_reorder(self):
        network = SimulatedNetwork(seed=3, config=LinkConfig(latency=0.01, jitter=0.5))
        a = network.bind("h", 1)
        b = network.bind("h", 2)
        for i in range(30):
            a.send(bytes([i]), b.address)
        network.run()
        payloads = [d.payload for d in b.receive_all()]
        assert payloads != sorted(payloads)

"""Tests for the declarative spec API: registries, specs, assembly."""

import json

import pytest

from repro.adapter.mealy_sul import MealySUL, toy_machine
from repro.framework import Prognosis
from repro.learn.cache import CachedMembershipOracle
from repro.learn.equivalence import (
    ChainedEquivalenceOracle,
    RandomWordEquivalenceOracle,
    WMethodEquivalenceOracle,
)
from repro.learn.nondeterminism import MajorityVoteOracle
from repro.registry import (
    EQ_ORACLE_REGISTRY,
    LEARNER_REGISTRY,
    MIDDLEWARE_REGISTRY,
    Registry,
    RegistryError,
    SUL_REGISTRY,
    load_builtins,
    supported_kwargs,
)
from repro.spec import (
    ComponentSpec,
    ExperimentSpec,
    SpecError,
    assemble,
    build_sul,
)


class TestRegistry:
    def test_register_and_create(self):
        registry = Registry("widget")

        @registry.register("box")
        def build_box(size: int = 1):
            return ("box", size)

        assert "box" in registry
        assert registry.create("box", size=3) == ("box", 3)
        assert registry.names() == ("box",)

    def test_unknown_key_names_known_ones(self):
        registry = Registry("widget")
        registry.register("box", lambda: None)
        with pytest.raises(RegistryError, match="box"):
            registry.get("sphere")

    def test_builtins_registered(self):
        load_builtins()
        for name in ("tcp", "tcp-handshake", "quic-google", "quic-quiche",
                     "quic-mvfst", "toy"):
            assert name in SUL_REGISTRY
        assert {"ttt", "lstar"} <= set(LEARNER_REGISTRY.names())
        assert {"wmethod", "random"} <= set(EQ_ORACLE_REGISTRY.names())
        assert {"cache", "majority-vote"} <= set(MIDDLEWARE_REGISTRY.names())

    def test_supported_kwargs_filters(self):
        def fn(a, b=1):
            return a, b

        assert supported_kwargs(fn, {"b": 2, "c": 3}) == {"b": 2}

        def fn_kwargs(a, **rest):
            return a, rest

        assert supported_kwargs(fn_kwargs, {"b": 2, "c": 3}) == {"b": 2, "c": 3}


class TestExperimentSpecSerialization:
    def test_json_round_trip_is_lossless(self):
        spec = ExperimentSpec(
            target="quic-google",
            target_params={"seed": 7, "retry_enabled": True},
            learner="lstar",
            learner_params={"max_rounds": 50},
            equivalence=[
                ComponentSpec("random", {"num_words": 100}),
                ComponentSpec("wmethod", {"extra_states": 2}),
            ],
            middleware=[
                ComponentSpec("majority-vote", {"min_repeats": 2}),
                ComponentSpec("cache"),
            ],
            workers=4,
            seed=13,
            batch_size=32,
            name="g-lstar",
        )
        round_tripped = ExperimentSpec.from_json(spec.to_json())
        assert round_tripped == spec
        assert round_tripped.to_dict() == spec.to_dict()
        # JSON text itself is stable across a second round trip.
        assert round_tripped.to_json() == spec.to_json()

    def test_component_string_shorthand(self):
        spec = ExperimentSpec.from_dict(
            {"target": "toy", "middleware": ["cache"], "equivalence": ["wmethod"]}
        )
        assert spec.middleware == [ComponentSpec("cache")]
        assert spec.equivalence == [ComponentSpec("wmethod")]

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="learnr"):
            ExperimentSpec.from_dict({"target": "toy", "learnr": "ttt"})

    def test_missing_target_rejected(self):
        with pytest.raises(SpecError, match="target"):
            ExperimentSpec.from_dict({"learner": "ttt"})

    def test_clone_is_independent(self):
        spec = ExperimentSpec(target="toy", target_params={"seed": 1})
        other = spec.clone(learner="lstar")
        other.target_params["seed"] = 99
        other.middleware[0].params["collapse_prefixes"] = False
        assert spec.target_params == {"seed": 1}
        assert spec.middleware[0].params == {}
        assert other.learner == "lstar"

    def test_validate_rejects_unknown_components(self):
        with pytest.raises(RegistryError):
            ExperimentSpec(target="no-such-protocol").validate()
        with pytest.raises(RegistryError):
            ExperimentSpec(target="toy", learner="no-such-learner").validate()

    def test_fingerprint_ignores_learner_and_seed(self):
        a = ExperimentSpec(target="toy", learner="ttt", seed=0)
        b = ExperimentSpec(target="toy", learner="lstar", seed=9)
        c = ExperimentSpec(target="toy", target_params={"seed": 1})
        assert a.sul_fingerprint() == b.sul_fingerprint()
        assert a.sul_fingerprint() != c.sul_fingerprint()


class TestPropertiesSpec:
    def test_properties_section_round_trips_losslessly(self):
        from repro.spec import PropertiesSpec

        spec = ExperimentSpec(
            target="toy",
            properties=PropertiesSpec(
                suite="toy",
                depth=7,
                formulas=["G (out != NIL)", "F (out == NIL)"],
                include_probes=True,
                minimize=False,
            ),
        )
        round_tripped = ExperimentSpec.from_json(spec.to_json())
        assert round_tripped == spec
        assert round_tripped.to_json() == spec.to_json()

    def test_absent_section_stays_none(self):
        spec = ExperimentSpec.from_dict({"target": "toy"})
        assert spec.properties is None
        assert ExperimentSpec.from_json(spec.to_json()).properties is None

    def test_section_accepted_as_mapping(self):
        spec = ExperimentSpec.from_dict(
            {"target": "toy", "properties": {"depth": 3}}
        )
        assert spec.properties.depth == 3
        assert spec.properties.formulas == []
        assert spec.properties.minimize is True

    def test_unknown_properties_keys_rejected(self):
        with pytest.raises(SpecError, match="dpeth"):
            ExperimentSpec.from_dict(
                {"target": "toy", "properties": {"dpeth": 3}}
            )

    def test_clone_deep_copies_the_section(self):
        from repro.spec import PropertiesSpec

        spec = ExperimentSpec(
            target="toy", properties=PropertiesSpec(formulas=["G (out == NIL)"])
        )
        other = spec.clone(name="copy")
        other.properties.formulas.append("F (out == NIL)")
        assert spec.properties.formulas == ["G (out == NIL)"]

    def test_clone_can_attach_a_section(self):
        from repro.spec import PropertiesSpec

        spec = ExperimentSpec(target="toy")
        other = spec.clone(properties=PropertiesSpec(depth=2))
        assert spec.properties is None
        assert other.properties.depth == 2

    def test_validate_checks_depth_and_suite(self):
        from repro.spec import PropertiesSpec

        with pytest.raises(SpecError, match="depth"):
            ExperimentSpec(
                target="toy", properties=PropertiesSpec(depth=0)
            ).validate()
        with pytest.raises(RegistryError):
            ExperimentSpec(
                target="toy", properties=PropertiesSpec(suite="no-such-suite")
            ).validate()
        ExperimentSpec(
            target="toy", properties=PropertiesSpec(suite="tcp")
        ).validate()


class TestExecutorSpec:
    def test_round_trips_losslessly(self):
        from repro.spec import ExecutorSpec

        spec = ExperimentSpec(
            target="toy",
            executor=ExecutorSpec(kind="process", workers=4, timeout_s=30.0),
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.executor.kind == "process"
        assert restored.executor.timeout_s == 30.0

    def test_string_shorthand(self):
        spec = ExperimentSpec(target="toy", executor="process")
        assert spec.executor.kind == "process"
        assert spec.executor.workers is None

    def test_absent_section_stays_none_and_serializes(self):
        spec = ExperimentSpec(target="toy")
        assert spec.executor is None
        assert spec.to_dict()["executor"] is None
        assert ExperimentSpec.from_dict(spec.to_dict()).executor is None

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown executor spec keys"):
            ExperimentSpec(target="toy", executor={"kind": "thread", "gpu": 1})

    def test_effective_executor_defaults(self):
        # no section: historical behaviour -- workers decide the backend
        assert ExperimentSpec(target="toy").effective_executor().kind == "serial"
        pooled = ExperimentSpec(target="toy", workers=4).effective_executor()
        assert (pooled.kind, pooled.workers) == ("thread", 4)

    def test_effective_executor_overrides_workers(self):
        spec = ExperimentSpec(
            target="toy", workers=2, executor={"kind": "process", "workers": 6}
        )
        assert spec.effective_executor().workers == 6
        inherit = ExperimentSpec(target="toy", workers=2, executor="process")
        assert inherit.effective_executor().workers == 2

    def test_validate_rejects_bad_executors(self):
        for bad in (
            {"executor": "gpu"},
            {"executor": "serial", "workers": 4},
            {"executor": {"kind": "process", "workers": 0}},
            {"executor": {"kind": "process", "timeout_s": -1.0}},
        ):
            workers = bad.pop("workers", 1)
            with pytest.raises(SpecError):
                ExperimentSpec(target="toy", workers=workers, **bad).validate()

    def test_fingerprint_ignores_executor(self):
        plain = ExperimentSpec(target="toy")
        parallel = ExperimentSpec(
            target="toy", workers=8, executor={"kind": "process"}
        )
        assert plain.sul_fingerprint() == parallel.sul_fingerprint()

    def test_clone_deep_copies_the_section(self):
        spec = ExperimentSpec(target="toy", executor={"kind": "process"})
        copy = spec.clone()
        copy.executor.kind = "thread"
        assert spec.executor.kind == "process"

    def test_build_sul_process_backend(self):
        from repro.adapter.pool import SULPool

        sul = build_sul(
            ExperimentSpec(
                target="toy",
                executor={"kind": "process", "workers": 2, "timeout_s": 60.0},
            )
        )
        try:
            assert isinstance(sul, SULPool)
            assert sul.backend == "process"
            assert sul.workers == 2
        finally:
            sul.close()

    def test_facade_process_backend_learns_identically(self, toy_machine):
        with Prognosis.from_spec(ExperimentSpec(target="toy", name="toy")) as serial:
            serial_report = serial.learn()
        spec = ExperimentSpec(
            target="toy", name="toy", executor={"kind": "process", "workers": 2}
        )
        with Prognosis.from_spec(spec) as pooled:
            pooled_report = pooled.learn()
            assert pooled.workers == 2
        assert pooled_report.model.to_dict() == serial_report.model.to_dict()
        assert pooled_report.sul_queries == serial_report.sul_queries


class TestAssembly:
    def test_pipeline_layers_match_spec(self):
        spec = ExperimentSpec(
            target="toy",
            equivalence=[
                ComponentSpec("random", {"num_words": 10}),
                ComponentSpec("wmethod"),
            ],
            middleware=[
                ComponentSpec("majority-vote", {"min_repeats": 2}),
                ComponentSpec("cache"),
            ],
        )
        pipeline = assemble(spec)
        assert isinstance(pipeline.middleware[0], MajorityVoteOracle)
        assert isinstance(pipeline.middleware[1], CachedMembershipOracle)
        assert pipeline.oracle is pipeline.middleware[-1]
        assert isinstance(pipeline.equivalence_oracle, ChainedEquivalenceOracle)
        chain = pipeline.equivalence_oracle.oracles
        assert isinstance(chain[0], RandomWordEquivalenceOracle)
        assert isinstance(chain[1], WMethodEquivalenceOracle)

    def test_spec_level_knobs_injected(self):
        spec = ExperimentSpec(
            target="toy",
            equivalence=[ComponentSpec("random", {"num_words": 10})],
            seed=42,
            batch_size=17,
        )
        pipeline = assemble(spec)
        eq = pipeline.equivalence_oracle
        assert eq.batch_size == 17
        # component params override spec-level injection
        spec2 = ExperimentSpec(
            target="toy",
            equivalence=[ComponentSpec("random", {"batch_size": 5})],
            batch_size=17,
        )
        assert assemble(spec2).equivalence_oracle.batch_size == 5

    def test_build_sul_pools_when_workers(self):
        from repro.adapter.pool import SULPool

        sul = build_sul(ExperimentSpec(target="toy", workers=3))
        try:
            assert isinstance(sul, SULPool)
            assert sul.workers == 3
        finally:
            sul.close()

    def test_spec_learn_matches_legacy_learn(self, toy_machine):
        with Prognosis.from_spec(ExperimentSpec(target="toy")) as spec_run:
            spec_report = spec_run.learn()
        with Prognosis(MealySUL(toy_machine, name="toy")) as legacy_run:
            legacy_report = legacy_run.learn()
        assert spec_report.model.to_dict() == legacy_report.model.to_dict()
        assert spec_report.sul_queries == legacy_report.sul_queries


class TestPrognosisFacade:
    def test_context_manager_closes_pool(self):
        with Prognosis.from_spec(ExperimentSpec(target="toy", workers=2)) as p:
            report = p.learn()
            assert report.workers == 2
        # after close, the executor's thread pool is released
        assert p.sul._executor._pool is None

    def test_spec_and_sul_are_exclusive(self):
        with pytest.raises(ValueError):
            Prognosis(
                MealySUL(toy_machine()), spec=ExperimentSpec(target="toy")
            )

    def test_legacy_spec_recorded(self, toy_machine):
        prognosis = Prognosis(MealySUL(toy_machine), equivalence="random+wmethod")
        assert prognosis.spec.learner == "ttt"
        assert [c.kind for c in prognosis.spec.equivalence] == ["random", "wmethod"]
        assert [c.kind for c in prognosis.spec.middleware] == ["cache"]

    def test_attribution_method_used(self, toy_machine):
        prognosis = Prognosis(MealySUL(toy_machine))
        report = prognosis.learn()
        assert report.eq_attribution == prognosis.equivalence_oracle.attribution()
        assert "wmethod" in report.eq_attribution

    def test_report_to_dict_is_jsonable(self, toy_machine):
        report = Prognosis(MealySUL(toy_machine)).learn()
        data = json.loads(json.dumps(report.to_dict()))
        assert data["num_states"] == 3
        assert data["eq_attribution"]["wmethod"]["words_submitted"] > 0


class TestAttackSpec:
    def test_round_trips_losslessly(self):
        from repro.spec import AttackSpec

        spec = ExperimentSpec(
            target="toy",
            attack=AttackSpec(
                attacker="off-path-rst",
                objective="G (out != NIL)",
                budget=50,
                fuzz=True,
                max_suffix=3,
                corpus_out="attacks.jsonl",
            ),
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.attack.attacker == "off-path-rst"
        assert restored.attack.fuzz is True
        assert restored.attack.clone() == restored.attack

    def test_string_shorthand_is_an_attacker_key(self):
        spec = ExperimentSpec(target="toy", attack="rapid-reset")
        assert spec.attack.attacker == "rapid-reset"
        assert spec.attack.budget == 200
        assert spec.attack.fuzz is False

    def test_absent_section_stays_none_and_serializes(self):
        spec = ExperimentSpec(target="toy")
        assert spec.attack is None
        assert spec.to_dict()["attack"] is None
        assert ExperimentSpec.from_dict(spec.to_dict()).attack is None

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown attack spec keys"):
            ExperimentSpec(target="toy", attack={"attacker": "x", "laser": 1})

    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(SpecError, match="positive attack budget"):
            ExperimentSpec(target="toy", attack={"budget": 0}).validate()
        with pytest.raises(SpecError, match="positive attack max_suffix"):
            ExperimentSpec(target="toy", attack={"max_suffix": 0}).validate()

    def test_validate_rejects_unknown_attacker(self):
        with pytest.raises(RegistryError, match="attacker automaton"):
            ExperimentSpec(target="toy", attack="not-an-attack").validate()

    def test_validate_rejects_bad_objective(self):
        with pytest.raises(SpecError, match="bad attack objective"):
            ExperimentSpec(
                target="toy", attack={"objective": "G (("}
            ).validate()

    def test_clone_carries_the_section(self):
        spec = ExperimentSpec(target="toy", attack="off-path-rst")
        clone = spec.clone(seed=3)
        assert clone.attack == spec.attack
        assert clone.attack is not spec.attack  # independent copy

"""Abstraction-granularity experiments (paper section 5, Remark 3.1).

Nondeterminism has two causes: (1) an abstraction so coarse that distinct
concrete behaviours collapse onto one abstract input, and (2) the
implementation misbehaving.  Issue-2 tests cover (2); these tests cover
(1): an ambiguous abstract symbol whose concretization the adapter picks
arbitrarily makes learning fail with a NondeterminismError -- the signal
that the user must refine the abstraction.

Remark 3.1's companion: TCP initial sequence numbers are random, so
synthesizing over *raw* sequence numbers cannot generalize; rebasing them
(the adapter's default) makes the register pattern synthesizable.
"""

import pytest

from repro.adapter.tcp_adapter import TCPAdapterSUL
from repro.core.alphabet import parse_tcp_symbol, tcp_handshake_alphabet
from repro.experiments import learn_quic
from repro.learn.nondeterminism import NondeterminismError, NondeterminismPolicy
from repro.quic.impls.tracker import TrackerConfig
from repro.synth import synthesize
from repro.synth.terms import ConstTerm


class TestCoarseAbstractionNondeterminism:
    def test_ambiguous_stream_symbol_breaks_learning(self):
        """Reason (1): the same abstract query gets different answers."""
        with pytest.raises(NondeterminismError):
            learn_quic(
                "quiche",
                tracker_config=TrackerConfig(ambiguous_stream_abstraction=True),
                nondeterminism_policy=NondeterminismPolicy(
                    min_repeats=3, max_repeats=8, certainty=0.95
                ),
            )

    def test_refined_abstraction_learns_fine(self):
        """The refined (default) abstraction is deterministic."""
        experiment = learn_quic(
            "quiche",
            tracker_config=TrackerConfig(ambiguous_stream_abstraction=False),
            nondeterminism_policy=NondeterminismPolicy(
                min_repeats=2, max_repeats=6, certainty=0.95
            ),
        )
        assert experiment.model.num_states == 8


class TestRemark31RandomSequenceNumbers:
    def _handshake_traces(self, relative: bool):
        sul = TCPAdapterSUL(
            alphabet=tcp_handshake_alphabet(), relative_numbers=relative
        )
        syn = parse_tcp_symbol("SYN(?,?,0)")
        ack = parse_tcp_symbol("ACK(?,?,0)")
        for _ in range(4):  # four sessions, four random ISNs
            sul.query((syn, ack))
        # Learn a tiny skeleton for the synthesis sketch.
        from repro.framework import Prognosis

        model = Prognosis(sul, name="hs").learn().model
        return model, sul.oracle_table.concrete_traces()

    def test_raw_sequence_numbers_do_not_generalize(self):
        model, traces = self._handshake_traces(relative=False)
        result = synthesize(
            model,
            traces,
            register_names=("r",),
            output_fields=("an",),
            max_branches=60_000,
        )
        # Either no machine fits, or the only fit is trace-specific (the
        # random ISNs cannot be produced by one shared term, so any found
        # assignment cannot be a single shared constant).
        if result is not None:
            syn_terms = result.output_terms("an")
            assert not any(
                isinstance(term, ConstTerm) for term in syn_terms.values()
            )

    def test_rebased_numbers_synthesize_cleanly(self):
        model, traces = self._handshake_traces(relative=True)
        result = synthesize(
            model, traces, register_names=("r",), output_fields=("an",)
        )
        assert result is not None
        # All rebased handshakes agree: the SYN response acks sn+1 == 1.
        for trace in traces:
            assert result.machine.consistent_with(list(trace))

"""Tests for the HTTP/2 adapter: alpha/gamma, registry, pooled identity."""

import pytest

from repro.adapter.http2_adapter import (
    HTTP2AdapterSUL,
    abstract_frame,
    abstract_frames,
    build_http2_sul,
    frame_params,
)
from repro.core.alphabet import (
    HTTP2_EMPTY_OUTPUT,
    deserialize_symbol,
    parse_http2_output,
    parse_http2_symbol,
    parse_tcp_symbol,
    serialize_symbol,
)
from repro.experiments import learn_http2
from repro.http2.frames import ErrorCode, goaway_frame, headers_frame, settings_frame
from repro.registry import SUL_REGISTRY, load_builtins

SETTINGS = parse_http2_symbol("SETTINGS[]")
REQUEST = parse_http2_symbol("HEADERS[END_HEADERS,END_STREAM]")
RST = parse_http2_symbol("RST_STREAM[]")


class TestAbstraction:
    def test_alpha_strips_payload_and_stream_id(self):
        frame = headers_frame(7, b"\x82\x84", end_stream=True)
        assert str(abstract_frame(frame)) == "HEADERS[END_HEADERS,END_STREAM]"

    def test_alpha_lifts_empty_response_to_nil(self):
        assert abstract_frames([]) is HTTP2_EMPTY_OUTPUT
        assert str(abstract_frames([])) == "NIL"

    def test_alpha_preserves_frame_order(self):
        frames = [settings_frame(), settings_frame(ack=True)]
        assert str(abstract_frames(frames)) == "SETTINGS[]+SETTINGS[ACK]"

    def test_frame_params_carry_error_codes(self):
        params = frame_params(goaway_frame(3, ErrorCode.STREAM_CLOSED))
        assert params["err"] == ErrorCode.STREAM_CLOSED
        assert params["last_sid"] == 3


class TestSymbolCodec:
    def test_symbol_roundtrip(self):
        symbol = parse_http2_symbol("HEADERS[END_HEADERS,END_STREAM]")
        data = serialize_symbol(symbol)
        assert data["kind"] == "http2"
        assert deserialize_symbol(data) == symbol

    def test_output_roundtrip(self):
        output = parse_http2_output("HEADERS[END_HEADERS]+DATA[END_STREAM]")
        data = serialize_symbol(output)
        assert data["kind"] == "http2-output"
        assert deserialize_symbol(data) == output

    def test_nil_output_roundtrip(self):
        assert deserialize_symbol(serialize_symbol(HTTP2_EMPTY_OUTPUT)).is_empty


class TestHTTP2AdapterSUL:
    def test_query_records_oracle_entry(self):
        sul = HTTP2AdapterSUL()
        outputs = sul.query((SETTINGS, REQUEST))
        assert str(outputs[0]) == "SETTINGS[]+SETTINGS[ACK]"
        assert str(outputs[1]) == "HEADERS[END_HEADERS]+DATA[END_STREAM]"
        entry = sul.oracle_table.lookup((SETTINGS, REQUEST))
        assert entry is not None
        assert entry.steps[1].input_params["sid"] == 1
        sul.close()

    def test_determinism_across_queries(self):
        sul = HTTP2AdapterSUL()
        word = (SETTINGS, REQUEST, RST, REQUEST)
        assert sul.query(word) == sul.query(word)
        sul.close()

    def test_foreign_symbol_rejected(self):
        sul = HTTP2AdapterSUL()
        with pytest.raises(TypeError):
            sul.query((parse_tcp_symbol("SYN(?,?,0)"),))
        sul.close()

    def test_registry_targets_present(self):
        load_builtins()
        assert "http2" in SUL_REGISTRY
        assert "http2-buggy" in SUL_REGISTRY

    def test_spec_configurable_quirk(self):
        sul = SUL_REGISTRY.create("http2", server_config={"rst_on_closed_bug": True})
        outputs = sul.query((SETTINGS, REQUEST, RST))
        assert "GOAWAY" in str(outputs[2])
        sul.close()

    def test_buggy_convenience_target(self):
        sul = build_http2_sul(rst_on_closed_bug=True)
        assert sul.server.config.rst_on_closed_bug
        sul.close()

    def test_quirk_flag_composes_with_server_config(self):
        sul = build_http2_sul(
            rst_on_closed_bug=True, server_config={"response_body": b"x"}
        )
        assert sul.server.config.rst_on_closed_bug
        assert sul.server.config.response_body == b"x"
        sul.close()


class TestComposedIdentity:
    def test_composed_stack_learns_the_monolithic_model(self):
        """Satellite guarantee: migrating ``http2`` onto
        ``compose(ReliableByteTransport, build_http2_app)`` left the
        learned model byte-identical to the monolithic adapter's."""
        from repro.core.mealy import behavior_fingerprint
        from repro.framework import Prognosis

        composed = learn_http2()
        with Prognosis(
            sul=HTTP2AdapterSUL(),
            learner="ttt",
            equivalence="wmethod",
            extra_states=1,
            name="http2-monolithic",
        ) as monolithic:
            model = monolithic.learn().model
            assert model.num_states == composed.model.num_states == 5
            assert model.relabel().structurally_equal(composed.model.relabel())
            assert behavior_fingerprint(model) == behavior_fingerprint(
                composed.model
            )
        composed.close()


class TestLearnedModels:
    def test_pooled_equals_serial(self):
        """Acceptance: workers=4 learns a byte-identical model (like the
        TCP/QUIC pooled-identity tests in test_batch_equivalence.py)."""
        serial = learn_http2(workers=1)
        pooled = learn_http2(workers=4)
        try:
            assert serial.model.states == pooled.model.states
            assert serial.model.initial_state == pooled.model.initial_state
            for state in serial.model.states:
                for symbol in serial.model.input_alphabet:
                    assert serial.model.step(state, symbol) == pooled.model.step(
                        state, symbol
                    )
            assert serial.report.counterexamples == pooled.report.counterexamples
            assert serial.report.sul_queries == pooled.report.sul_queries
        finally:
            serial.close()
            pooled.close()

    def test_ttt_and_lstar_agree(self):
        """Acceptance: both learners converge to the same minimal machine."""
        ttt = learn_http2(learner="ttt")
        lstar = learn_http2(learner="lstar")
        try:
            assert ttt.model.num_states == 5
            assert ttt.model.minimize().num_states == ttt.model.num_states
            assert ttt.model.relabel().structurally_equal(lstar.model.relabel())
        finally:
            ttt.close()
            lstar.close()

    def test_buggy_model_merges_states(self):
        buggy = learn_http2(rst_on_closed_bug=True)
        try:
            assert buggy.model.num_states == 4
        finally:
            buggy.close()

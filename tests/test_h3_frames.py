"""Tests for the HTTP/3 frame codec: round-trips and chunked decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.h3.frames import (
    H3Frame,
    H3FrameDecoder,
    H3FrameError,
    H3FrameType,
    data_frame,
    goaway_frame,
    headers_frame,
    max_push_id_frame,
    parse_goaway,
    parse_settings,
    settings_frame,
)


class TestFrameEncoding:
    def test_encode_is_type_length_payload(self):
        frame = data_frame(b"hello")
        assert frame.encode() == b"\x00\x05hello"

    def test_empty_payload(self):
        assert settings_frame().encode() == b"\x04\x00"

    def test_kind_names(self):
        assert headers_frame(b"").kind == "HEADERS"
        assert goaway_frame(0).kind == "GOAWAY"
        assert max_push_id_frame(3).kind == "MAX_PUSH_ID"

    def test_unknown_type_kind(self):
        assert H3Frame(0x21, b"").kind == "UNKNOWN_0x21"

    @pytest.mark.parametrize(
        "frame",
        [
            data_frame(b"body-bytes"),
            headers_frame(b"\x00\x00\xd1"),
            settings_frame({0x01: 0, 0x06: 16384}),
            goaway_frame(8),
            max_push_id_frame(77),
            H3Frame(0x4040, b"greased"),  # an unknown (GREASE-like) type
        ],
    )
    def test_roundtrip(self, frame):
        decoded = H3FrameDecoder().feed(frame.encode())
        assert decoded == [frame]


class TestFrameDecoder:
    def test_multiple_frames_in_one_feed(self):
        wire = data_frame(b"a").encode() + headers_frame(b"b").encode()
        frames = H3FrameDecoder().feed(wire)
        assert [f.kind for f in frames] == ["DATA", "HEADERS"]

    def test_byte_at_a_time_chunked_feed(self):
        wire = settings_frame({0x01: 0}).encode() + data_frame(b"xyz").encode()
        decoder = H3FrameDecoder()
        frames = []
        for i in range(len(wire)):
            frames.extend(decoder.feed(wire[i : i + 1]))
        assert [f.kind for f in frames] == ["SETTINGS", "DATA"]
        assert frames[1].payload == b"xyz"
        assert decoder.buffered == 0

    def test_partial_frame_stays_buffered(self):
        wire = data_frame(b"0123456789").encode()
        decoder = H3FrameDecoder()
        assert decoder.feed(wire[:4]) == []
        assert decoder.buffered == 4
        assert decoder.feed(wire[4:]) == [data_frame(b"0123456789")]

    @settings(max_examples=50, deadline=None)
    @given(
        frames=st.lists(
            st.tuples(
                st.sampled_from(
                    [int(t) for t in H3FrameType] + [0x21, 0x4040]
                ),
                st.binary(max_size=40),
            ),
            max_size=6,
        ),
        chunk=st.integers(min_value=1, max_value=7),
    )
    def test_hypothesis_chunked_roundtrip(self, frames, chunk):
        originals = [H3Frame(t, payload) for t, payload in frames]
        wire = b"".join(f.encode() for f in originals)
        decoder = H3FrameDecoder()
        decoded = []
        for i in range(0, len(wire), chunk):
            decoded.extend(decoder.feed(wire[i : i + chunk]))
        assert decoded == originals
        assert decoder.buffered == 0


class TestPayloadParsers:
    def test_parse_settings_roundtrip(self):
        table = {0x01: 0, 0x06: 16384, 0x4040: 99}
        assert parse_settings(settings_frame(table)) == table

    def test_parse_settings_rejects_wrong_type(self):
        with pytest.raises(H3FrameError):
            parse_settings(data_frame(b""))

    def test_parse_settings_rejects_truncation(self):
        with pytest.raises(H3FrameError):
            parse_settings(H3Frame(H3FrameType.SETTINGS, b"\x01"))

    def test_parse_goaway_roundtrip(self):
        assert parse_goaway(goaway_frame(12)) == 12

    def test_parse_goaway_rejects_wrong_type(self):
        with pytest.raises(H3FrameError):
            parse_goaway(settings_frame())

    def test_parse_goaway_rejects_trailing_bytes(self):
        with pytest.raises(H3FrameError):
            parse_goaway(H3Frame(H3FrameType.GOAWAY, b"\x04\xff"))

    def test_parse_goaway_rejects_empty(self):
        with pytest.raises(H3FrameError):
            parse_goaway(H3Frame(H3FrameType.GOAWAY, b""))

"""Tests for the HTTP/2 property suite against learned models."""

import pytest

from repro.analysis.http2_properties import (
    STANDARD_PROPERTIES,
    check_stream_id_monotonicity,
    stream_id_violations,
)
from repro.analysis.property_api import Verdict
from repro.core.oracle_table import OracleTable
from repro.core.alphabet import parse_http2_symbol
from repro.experiments import learn_http2
from repro.registry import resolve_property_suite


@pytest.fixture(scope="module")
def conformant():
    experiment = learn_http2()
    yield experiment
    experiment.close()


@pytest.fixture(scope="module")
def buggy():
    experiment = learn_http2(rst_on_closed_bug=True)
    yield experiment
    experiment.close()


def run_suite(experiment, depth=5):
    """The suite exactly as campaigns run it: model checks plus the
    oracle-table check over the learning run's observations."""
    return experiment.prognosis.check_properties(experiment.model, depth=depth)


class TestSuiteDefinition:
    def test_registered_for_both_servers_by_stem(self):
        assert resolve_property_suite("http2") == STANDARD_PROPERTIES
        assert resolve_property_suite("http2-buggy") == STANDARD_PROPERTIES

    def test_stream_id_check_is_oracle_kind(self):
        kinds = {p.name: p.kind for p in STANDARD_PROPERTIES}
        assert kinds["stream-ids-monotonic"] == "oracle"


class TestConformantServer:
    def test_all_properties_hold(self, conformant):
        report = run_suite(conformant, depth=5)
        assert all(v.holds for v in report), report.render()

    def test_render_lists_every_property(self, conformant):
        report = run_suite(conformant, depth=3)
        rendered = report.render()
        for prop in STANDARD_PROPERTIES:
            assert prop.name in rendered
        assert "VIOLATED" not in rendered

    def test_stream_ids_monotonic(self, conformant):
        oracle_table = conformant.prognosis.sul.oracle_table
        assert len(oracle_table) > 0
        assert check_stream_id_monotonicity(oracle_table)

    def test_oracle_check_skipped_without_table(self, conformant):
        from repro.analysis.property_api import check_properties

        report = check_properties(conformant.model, STANDARD_PROPERTIES)
        assert report.verdict("stream-ids-monotonic").verdict == Verdict.SKIPPED


class TestBuggyServer:
    def test_quirk_flagged_by_rst_property(self, buggy):
        """Acceptance: the seeded quirk is caught by a named property,
        now with a ddmin-minimized witness."""
        report = run_suite(buggy)
        violated = report.verdict("rst-after-response-tolerated")
        assert violated.verdict == Verdict.VIOLATED
        assert violated.minimized
        witness = violated.witness.render()
        assert "RST_STREAM[]/GOAWAY[]" in witness
        # Minimal repro: open a stream, get the response, reset it.
        assert len(violated.witness) <= 3

    def test_other_properties_still_hold(self, buggy):
        report = run_suite(buggy)
        holding = {v.property.name for v in report if v.holds}
        assert holding == {
            "no-data-before-headers",
            "goaway-terminal",
            "settings-acked",
            "stream-ids-monotonic",
        }

    def test_render_marks_violation_with_witness(self, buggy):
        rendered = run_suite(buggy).render()
        assert "VIOLATED" in rendered
        assert "witness:" in rendered


class TestStreamIdCheck:
    def word(self, *labels):
        return tuple(parse_http2_symbol(label) for label in labels)

    def record(self, table, sids):
        inputs = self.word(*(["HEADERS[END_HEADERS,END_STREAM]"] * len(sids)))
        outputs = self.word(*(["HEADERS[END_HEADERS]"] * len(sids)))
        table.record(
            inputs,
            outputs,
            [{"sid": sid} for sid in sids],
            [{} for _ in sids],
        )

    def test_decreasing_ids_flagged(self):
        table = OracleTable()
        self.record(table, [3, 1])
        violations = stream_id_violations(table)
        assert len(violations) == 1
        assert violations[0][1] == 1  # the offending step index

    def test_even_ids_flagged(self):
        table = OracleTable()
        self.record(table, [2])
        assert not check_stream_id_monotonicity(table)

    def test_repeated_id_means_trailers(self):
        table = OracleTable()
        self.record(table, [1, 1, 3])
        assert check_stream_id_monotonicity(table)

"""Tests for the HTTP/2 property suite against learned models."""

import pytest

from repro.analysis.http2_properties import (
    STANDARD_PROPERTIES,
    check_http2_properties,
    check_stream_id_monotonicity,
    render_results,
    stream_id_violations,
)
from repro.core.oracle_table import OracleTable
from repro.core.alphabet import parse_http2_symbol
from repro.experiments import learn_http2


@pytest.fixture(scope="module")
def conformant():
    experiment = learn_http2()
    yield experiment
    experiment.close()


@pytest.fixture(scope="module")
def buggy():
    experiment = learn_http2(rst_on_closed_bug=True)
    yield experiment
    experiment.close()


class TestConformantServer:
    def test_all_properties_hold(self, conformant):
        results = check_http2_properties(conformant.model, depth=5)
        assert all(result.holds for result in results)

    def test_render_lists_every_property(self, conformant):
        results = check_http2_properties(conformant.model, depth=3)
        rendered = render_results(results)
        for prop in STANDARD_PROPERTIES:
            assert prop.name in rendered
        assert "VIOLATED" not in rendered

    def test_stream_ids_monotonic(self, conformant):
        oracle_table = conformant.prognosis.sul.oracle_table
        assert len(oracle_table) > 0
        assert check_stream_id_monotonicity(oracle_table)


class TestBuggyServer:
    def test_quirk_flagged_by_rst_property(self, buggy):
        """Acceptance: the seeded quirk is caught by a named property."""
        results = {r.property.name: r for r in check_http2_properties(buggy.model)}
        violated = results["rst-after-response-tolerated"]
        assert not violated.holds
        witness = violated.violation.trace.render()
        assert "RST_STREAM[]/GOAWAY[]" in witness

    def test_other_properties_still_hold(self, buggy):
        results = check_http2_properties(buggy.model)
        holding = {r.property.name for r in results if r.holds}
        assert holding == {
            "no-data-before-headers",
            "goaway-terminal",
            "settings-acked",
        }

    def test_render_marks_violation_with_witness(self, buggy):
        rendered = render_results(check_http2_properties(buggy.model))
        assert "VIOLATED" in rendered
        assert "witness:" in rendered


class TestStreamIdCheck:
    def word(self, *labels):
        return tuple(parse_http2_symbol(label) for label in labels)

    def record(self, table, sids):
        """One fake query of HEADERS inputs with the given stream ids."""
        inputs = self.word(*(["HEADERS[END_HEADERS,END_STREAM]"] * len(sids)))
        outputs = self.word(*(["HEADERS[END_HEADERS]"] * len(sids)))
        table.record(
            inputs,
            outputs,
            [{"sid": sid} for sid in sids],
            [{} for _ in sids],
        )

    def test_decreasing_ids_flagged(self):
        table = OracleTable()
        self.record(table, [3, 1])
        violations = stream_id_violations(table)
        assert len(violations) == 1
        assert violations[0][1] == 1  # the offending step index

    def test_even_ids_flagged(self):
        table = OracleTable()
        self.record(table, [2])
        assert not check_stream_id_monotonicity(table)

    def test_repeated_id_means_trailers(self):
        table = OracleTable()
        self.record(table, [1, 1, 3])
        assert check_stream_id_monotonicity(table)

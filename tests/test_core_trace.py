"""Unit tests for traces and word utilities."""

import pytest

from repro.core.alphabet import TCPSymbol, parse_tcp_symbol
from repro.core.trace import (
    EMPTY_TRACE,
    IOTrace,
    all_words,
    common_prefix_length,
    count_words,
    render_word,
)

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
NIL = parse_tcp_symbol("NIL")


class TestIOTrace:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IOTrace((SYN,), ())

    def test_prefixes_are_increasing(self):
        trace = IOTrace((SYN, ACK), (ACK, NIL))
        prefixes = list(trace.prefixes())
        assert [len(p) for p in prefixes] == [1, 2]
        assert prefixes[-1] == trace

    def test_extend(self):
        extended = EMPTY_TRACE.extend(SYN, ACK)
        assert len(extended) == 1
        assert extended.last_output == ACK

    def test_last_output_of_empty_raises(self):
        with pytest.raises(IndexError):
            _ = EMPTY_TRACE.last_output

    def test_render(self):
        trace = IOTrace((SYN,), (ACK,))
        assert "/" in trace.render()
        assert EMPTY_TRACE.render() == "ε"


class TestWordUtilities:
    def test_common_prefix_length(self):
        assert common_prefix_length("abcd", "abxy") == 2
        assert common_prefix_length("", "abc") == 0
        assert common_prefix_length("abc", "abc") == 3

    def test_render_word_empty(self):
        assert render_word(()) == "ε"

    def test_count_words_matches_paper(self):
        # The figure quoted in section 6.2.2.
        assert count_words(7, 10) == 329_554_456

    def test_count_words_small(self):
        assert count_words(2, 3) == 2 + 4 + 8

    def test_all_words_enumerates_exactly(self):
        words = list(all_words([SYN, ACK], 3))
        assert len(words) == count_words(2, 3)
        assert len(set(words)) == len(words)
        assert max(len(w) for w in words) == 3

"""Tests for the differential-testing primitives and DiffCampaign.

Everything here drives registered toy machines (plus deliberate mutants),
so the full matrix machinery -- concurrent learning, suite generation,
batched cross-replay, ddmin witness reduction, artifacts -- is exercised
in well under a second per test.
"""

import json

import pytest

from repro.adapter.mealy_sul import MealySUL, toy_machine
from repro.analysis.difftest import (
    VERDICT_AGREE,
    VERDICT_DIVERGE,
    VERDICT_ERROR,
    VERDICT_INCOMPATIBLE,
    VERDICT_SELF,
    CrossVerdict,
    cross_replay,
    minimize_witness,
)
from repro.analysis.equivalence import find_difference
from repro.campaign import DiffCampaign, run_difftest
from repro.core.alphabet import Alphabet
from repro.core.mealy import MealyMachine
from repro.learn.cache import CachedMembershipOracle
from repro.learn.teacher import SULMembershipOracle
from repro.registry import SUL_REGISTRY
from repro.spec import ExperimentSpec, SpecError


def mutate(machine, state, symbol, new_output, name="toy-mutant"):
    table = {
        (t.source, t.input): (t.target, t.output) for t in machine.transitions()
    }
    target, _ = table[(state, symbol)]
    table[(state, symbol)] = (target, new_output)
    return MealyMachine(machine.initial_state, machine.input_alphabet, table, name)


def toy_mutant_machine() -> MealyMachine:
    """The toy machine except the established state RSTs an ACK."""
    base = toy_machine()
    syn, ack = base.input_alphabet.symbols
    rst = base.step("s1", syn)[1]
    return mutate(base, "s1", ack, rst)


@pytest.fixture
def toy_mutant_target():
    SUL_REGISTRY.register(
        "toy-mutant", lambda: MealySUL(toy_mutant_machine(), name="toy-mutant")
    )
    yield "toy-mutant"
    SUL_REGISTRY.unregister("toy-mutant")


@pytest.fixture
def toy_narrow_target():
    """A toy variant over a *different* (single-symbol) input alphabet."""
    base = toy_machine()
    syn, _ = base.input_alphabet.symbols
    nil = base.step("s0", base.input_alphabet.symbols[1])[1]
    machine = MealyMachine(
        "s0",
        Alphabet.of([syn]),
        {("s0", syn): ("s0", nil)},
        "toy-narrow",
    )
    SUL_REGISTRY.register(
        "toy-narrow", lambda: MealySUL(machine, name="toy-narrow")
    )
    yield "toy-narrow"
    SUL_REGISTRY.unregister("toy-narrow")


# ---------------------------------------------------------------------------
# minimize_witness (ddmin)
# ---------------------------------------------------------------------------

class TestMinimizeWitness:
    def test_reduces_to_the_failing_core(self):
        word = tuple(range(12))

        def disagrees(candidate):
            return 3 in candidate and 7 in candidate

        assert sorted(minimize_witness(word, disagrees)) == [3, 7]

    def test_preserves_symbol_order(self):
        word = ("a", "x", "b", "y", "c")

        def disagrees(candidate):
            return "x" in candidate and "y" in candidate

        assert minimize_witness(word, disagrees) == ("x", "y")

    def test_result_is_one_minimal(self):
        word = tuple(range(20))

        def disagrees(candidate):
            return {2, 11, 17} <= set(candidate)

        witness = minimize_witness(word, disagrees)
        assert disagrees(witness)
        for index in range(len(witness)):
            assert not disagrees(witness[:index] + witness[index + 1 :])

    def test_single_symbol_word_returned_as_is(self):
        assert minimize_witness(("a",), lambda w: "a" in w) == ("a",)

    def test_rejects_non_disagreeing_word(self):
        with pytest.raises(ValueError):
            minimize_witness(("a", "b"), lambda w: False)

    def test_candidates_are_memoized(self):
        seen = []

        def disagrees(candidate):
            seen.append(candidate)
            return 1 in candidate

        minimize_witness(tuple(range(8)), disagrees)
        assert len(seen) == len(set(seen)), "a candidate was re-evaluated"

    def test_budget_exhaustion_still_disagrees(self):
        word = tuple(range(64))

        def disagrees(candidate):
            return {5, 40, 63} <= set(candidate)

        witness = minimize_witness(word, disagrees, max_tests=3)
        assert disagrees(witness)


# ---------------------------------------------------------------------------
# cross_replay
# ---------------------------------------------------------------------------

def oracle_over(machine: MealyMachine) -> CachedMembershipOracle:
    return CachedMembershipOracle(SULMembershipOracle(MealySUL(machine)))


class TestCrossReplay:
    def test_identical_machines_agree(self):
        reference = toy_machine()
        suite = reference.w_method_suite()
        assert cross_replay(reference, oracle_over(reference), suite) == []

    def test_mutant_divergences_found_in_suite_order(self):
        reference = toy_machine()
        mutant = toy_mutant_machine()
        suite = reference.w_method_suite()
        divergences = cross_replay(reference, oracle_over(mutant), suite)
        assert divergences
        positions = [suite.index(d.word) for d in divergences]
        assert positions == sorted(positions)
        for divergence in divergences:
            assert tuple(reference.run(divergence.word)) == divergence.expected
            assert tuple(mutant.run(divergence.word)) == divergence.actual

    def test_batching_does_not_change_findings(self):
        reference = toy_machine()
        mutant = toy_mutant_machine()
        suite = reference.w_method_suite()
        one = cross_replay(reference, oracle_over(mutant), suite, batch_size=1)
        big = cross_replay(reference, oracle_over(mutant), suite, batch_size=500)
        assert [d.word for d in one] == [d.word for d in big]

    def test_max_divergences_caps(self):
        reference = toy_machine()
        mutant = toy_mutant_machine()
        suite = reference.w_method_suite()
        capped = cross_replay(
            reference, oracle_over(mutant), suite, max_divergences=2
        )
        assert len(capped) == 2


# ---------------------------------------------------------------------------
# DiffCampaign
# ---------------------------------------------------------------------------

class TestDiffCampaign:
    def test_two_by_two_matrix(self, toy_mutant_target):
        result = run_difftest(["toy", toy_mutant_target])
        matrix = result.matrix
        assert matrix.targets == ["toy", "toy-mutant"]
        assert matrix.cell("toy", "toy").verdict == VERDICT_SELF
        assert matrix.cell("toy-mutant", "toy-mutant").verdict == VERDICT_SELF
        assert matrix.cell("toy", "toy-mutant").verdict == VERDICT_DIVERGE
        assert matrix.cell("toy-mutant", "toy").verdict == VERDICT_DIVERGE
        assert len(matrix.divergent_pairs()) == 2

    def test_witness_is_minimized_and_validated(self, toy_mutant_target):
        result = run_difftest(["toy", toy_mutant_target])
        cell = result.matrix.cell("toy", "toy-mutant")
        assert cell.witness is not None
        assert cell.witness_validated
        # As short as the exhaustive product-machine search's witness.
        models = {run.spec.name: run.model for run in result.runs}
        shortest = find_difference(models["toy"], models["toy-mutant"])
        assert len(cell.witness) == len(shortest)
        # Replaying the witness on both implementations reproduces the
        # differing outputs.
        assert (
            tuple(MealySUL(toy_machine()).query(cell.witness))
            == cell.witness_row_outputs
        )
        assert (
            tuple(MealySUL(toy_mutant_machine()).query(cell.witness))
            == cell.witness_col_outputs
        )
        assert cell.witness_row_outputs != cell.witness_col_outputs

    def test_equivalent_targets_agree(self):
        specs = [
            ExperimentSpec(target="toy", name="toy-a"),
            ExperimentSpec(target="toy", name="toy-b"),
        ]
        result = DiffCampaign(specs).run()
        assert result.matrix.cell("toy-a", "toy-b").verdict == VERDICT_AGREE
        assert result.matrix.cell("toy-b", "toy-a").verdict == VERDICT_AGREE
        assert result.matrix.divergent_pairs() == []
        assert result.diffs[("toy-a", "toy-b")].equivalent

    def test_failed_learning_yields_error_cells(self, toy_mutant_target):
        specs = [
            ExperimentSpec(target="toy", name="toy"),
            ExperimentSpec(target="nonexistent-target", name="broken"),
        ]
        result = DiffCampaign(specs).run()
        assert not result.runs[1].ok
        assert result.matrix.cell("toy", "broken").verdict == VERDICT_ERROR
        assert result.matrix.cell("broken", "toy").verdict == VERDICT_ERROR
        assert result.matrix.cell("broken", "broken").verdict == VERDICT_ERROR
        assert "broken" in result.matrix.cell("toy", "broken").error
        # The healthy diagonal is unaffected.
        assert result.matrix.cell("toy", "toy").verdict == VERDICT_SELF

    def test_alphabet_mismatch_yields_incompatible(self, toy_narrow_target):
        result = run_difftest(["toy", toy_narrow_target])
        assert (
            result.matrix.cell("toy", "toy-narrow").verdict
            == VERDICT_INCOMPATIBLE
        )
        assert (
            result.matrix.cell("toy-narrow", "toy").verdict
            == VERDICT_INCOMPATIBLE
        )
        assert ("toy", "toy-narrow") not in result.diffs

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecError):
            DiffCampaign([ExperimentSpec(target="toy"), ExperimentSpec(target="toy")])

    def test_unknown_family_rejected(self):
        with pytest.raises(SpecError):
            DiffCampaign.family("no-such-family")

    def test_family_expansion_uses_registry(self, toy_mutant_target):
        campaign = DiffCampaign.family("toy")
        names = [spec.display_name() for spec in campaign.specs]
        assert names == ["toy", "toy-mutant"]

    def test_pooled_matches_serial(self, toy_mutant_target):
        serial = run_difftest(["toy", toy_mutant_target], workers=1)
        pooled = run_difftest(["toy", toy_mutant_target], workers=4)
        for key, cell in serial.matrix.cells.items():
            other = pooled.matrix.cells[key]
            assert cell.verdict == other.verdict
            assert cell.witness == other.witness
            assert cell.suite_size == other.suite_size

    def test_suite_kinds_merge_and_dedup(self, toy_mutant_target):
        merged = run_difftest(
            ["toy", toy_mutant_target],
            kinds=("transition-cover", "wmethod", "random"),
        )
        wmethod_only = run_difftest(["toy", toy_mutant_target])
        cell = merged.matrix.cell("toy", "toy-mutant")
        base = wmethod_only.matrix.cell("toy", "toy-mutant")
        assert cell.suite_size >= base.suite_size
        suite_words = DiffCampaign.family(
            "toy", kinds=("transition-cover", "transition-cover")
        )._suite(toy_machine())
        assert len(suite_words) == len(set(suite_words))

    def test_random_suites_follow_the_spec_seed(self, toy_mutant_target):
        machine = toy_machine()
        campaign = DiffCampaign.family("toy", kinds=("random",))
        assert campaign._suite(machine, seed=1) != campaign._suite(machine, seed=2)
        assert campaign._suite(machine, seed=1) == campaign._suite(machine, seed=1)

    def test_artifact_write_failure_keeps_the_result(
        self, toy_mutant_target, monkeypatch, tmp_path
    ):
        def boom(self, result):
            raise OSError("disk full")

        monkeypatch.setattr(DiffCampaign, "_write_artifacts", boom)
        result = run_difftest(
            ["toy", toy_mutant_target], output_dir=tmp_path / "difftest"
        )
        assert result.artifact_dir is None
        assert "disk full" in result.artifact_error
        assert result.matrix.cell("toy", "toy-mutant").verdict == VERDICT_DIVERGE

    def test_artifacts_written(self, toy_mutant_target, tmp_path):
        out = tmp_path / "difftest"
        result = run_difftest(["toy", toy_mutant_target], output_dir=out)
        assert result.artifact_dir == str(out)
        matrix = json.loads((out / "matrix.json").read_text())
        assert matrix["matrix"]["targets"] == ["toy", "toy-mutant"]
        assert "suite \\ subject" in (out / "matrix.txt").read_text()
        diff = json.loads((out / "diff-toy-vs-toy-mutant.json").read_text())
        assert diff["equivalent"] is False
        assert diff["witnesses"]
        assert (out / "runs" / "000-toy" / "model.json").exists()

    def test_render_mentions_every_target(self, toy_mutant_target):
        result = run_difftest(["toy", toy_mutant_target])
        text = result.render()
        assert "toy-mutant" in text
        assert "DIVERGE" in text
        assert "witness" in text


class TestWitnessValidation:
    def test_learner_artifact_downgrades_to_error(self):
        """A 'divergence' both implementations disagree with the model on
        (but agree with each other) is a learner artifact, not a finding:
        the cell must become an error, never DIVERGE."""
        campaign = DiffCampaign([ExperimentSpec(target="toy")])
        machine = toy_machine()
        syn, ack = machine.input_alphabet.symbols
        wrong_model = mutate(machine, "s1", ack, machine.step("s1", syn)[1], "wrong")
        cell = CrossVerdict(row="a", col="b", verdict=VERDICT_DIVERGE)
        campaign._attach_witness(
            cell,
            [(syn, ack)],  # wrong_model predicts RST here; both SULs say NIL
            wrong_model,
            machine,
            oracle_over(machine),
            oracle_over(machine),
        )
        assert cell.verdict == VERDICT_ERROR
        assert cell.witness is None
        assert "learner/cache artifact" in cell.error


class TestCrossVerdictSerialization:
    def test_to_dict_round_trips_strings(self):
        cell = CrossVerdict(
            row="a",
            col="b",
            verdict=VERDICT_DIVERGE,
            suite_size=10,
            divergence_count=2,
            witness=("x", "y"),
            witness_row_outputs=("1", "2"),
            witness_col_outputs=("1", "3"),
            witness_validated=True,
        )
        data = cell.to_dict()
        assert data["witness"] == ["x", "y"]
        assert data["verdict"] == VERDICT_DIVERGE
        assert json.dumps(data)

    def test_label_shapes(self):
        assert "DIVERGE" in CrossVerdict("a", "b", VERDICT_DIVERGE, witness=("x",)).label()
        assert CrossVerdict("a", "b", VERDICT_ERROR).label() == "ERROR"
        assert CrossVerdict("a", "a", VERDICT_SELF).label() == "self"
        assert CrossVerdict("a", "b", VERDICT_AGREE).label() == "agree"
        assert CrossVerdict("a", "b", VERDICT_INCOMPATIBLE).label() == "INCOMPAT"

"""Tests for incremental re-learning against the stored model lineage."""

import json

from repro.campaign import run_spec
from repro.spec import ExperimentSpec
from repro.store import (
    MODE_COLD,
    MODE_RELEARNED,
    MODE_REVALIDATED,
    ModelStore,
    incremental_learn,
)


def _seed(target: str, store) -> ExperimentSpec:
    spec = ExperimentSpec(target=target, name=target)
    result = run_spec(spec, store=store)
    assert result.ok, result.error
    return spec


class TestIncrementalLearn:
    def test_cold_run_seeds_the_lineage(self, tmp_path):
        store = tmp_path / "store.sqlite"
        result = incremental_learn(ExperimentSpec(target="toy"), store)
        assert result.mode == MODE_COLD
        assert not result.drifted
        assert result.saved_version == 1
        with ModelStore(store) as models:
            assert models.version_count(result.fingerprint) == 1

    def test_unchanged_sul_revalidates_from_store(self, tmp_path):
        """The no-drift fast path: every revalidation query is served by
        the store, so the SUL is never touched."""
        store = tmp_path / "store.sqlite"
        spec = _seed("toy", store)
        result = incremental_learn(spec, store)
        assert result.mode == MODE_REVALIDATED
        assert not result.drifted
        assert result.revalidated_words > 0
        assert result.revalidation_sul_queries == 0
        assert result.store_hit_rate == 1.0
        assert result.saved_version is None  # unchanged: no new version
        with ModelStore(store) as models:
            assert models.version_count(result.fingerprint) == 1

    def test_http2_drift_detected_with_witness(self, tmp_path):
        store = tmp_path / "store.sqlite"
        _seed("http2", store)
        result = incremental_learn(
            ExperimentSpec(target="http2-buggy", name="http2-buggy"),
            store,
            baseline="http2",
        )
        assert result.mode == MODE_RELEARNED
        assert result.drifted
        assert result.diff is not None and not result.diff.equivalent
        assert result.diff.witnesses
        # The paper's RST-on-closed-stream bug: the buggy server answers
        # a RST_STREAM on a closed stream with GOAWAY instead of NIL.
        witness = result.diff.witnesses[0]
        assert "RST_STREAM" in " ".join(str(s) for s in witness.word)

    def test_tcp_drift_detected_with_witness(self, tmp_path):
        store = tmp_path / "store.sqlite"
        _seed("tcp", store)
        result = incremental_learn(
            ExperimentSpec(
                target="tcp-no-challenge-ack", name="tcp-no-challenge-ack"
            ),
            store,
            baseline="tcp",
        )
        assert result.drifted
        assert result.diff is not None and result.diff.witnesses

    def test_drifted_model_is_appended_to_own_lineage(self, tmp_path):
        store = tmp_path / "store.sqlite"
        _seed("http2", store)
        result = incremental_learn(
            ExperimentSpec(target="http2-buggy"), store, baseline="http2"
        )
        assert result.saved_version == 1  # first version under its own key
        assert result.fingerprint != result.baseline_fingerprint
        with ModelStore(store) as models:
            record = models.latest(result.fingerprint)
            assert json.dumps(record.model, sort_keys=True) == json.dumps(
                result.model.to_dict(), sort_keys=True
            )

    def test_no_save_keeps_the_lineage(self, tmp_path):
        store = tmp_path / "store.sqlite"
        _seed("http2", store)
        result = incremental_learn(
            ExperimentSpec(target="http2-buggy"),
            store,
            baseline="http2",
            save=False,
        )
        assert result.drifted and result.saved_version is None
        with ModelStore(store) as models:
            assert models.version_count(result.fingerprint) == 0

    def test_result_serializes(self, tmp_path):
        store = tmp_path / "store.sqlite"
        spec = _seed("toy", store)
        result = incremental_learn(spec, store)
        data = json.loads(json.dumps(result.to_dict()))
        assert data["mode"] == MODE_REVALIDATED
        assert data["drifted"] is False
        assert data["spec"]["target"] == "toy"

    def test_summary_mentions_drift(self, tmp_path):
        store = tmp_path / "store.sqlite"
        _seed("http2", store)
        result = incremental_learn(
            ExperimentSpec(target="http2-buggy"), store, baseline="http2"
        )
        assert "DRIFT" in result.summary()

"""Tests for the synthesis module: terms, constraints, solver, CEGIS."""

import pytest

from repro.core.alphabet import Alphabet, parse_tcp_symbol
from repro.core.extended import ConcreteStep
from repro.core.mealy import mealy_from_table
from repro.synth.constraints import build_problem
from repro.synth.solver import SearchBudgetExceeded, TraceSolver
from repro.synth.synthesizer import synthesize, synthesize_with_cegis
from repro.synth.terms import (
    ConstTerm,
    InputTerm,
    PlusOne,
    RegisterTerm,
    candidate_terms,
    mine_constants,
    term_complexity,
)

SYN = parse_tcp_symbol("SYN(?,?,0)")
ACK = parse_tcp_symbol("ACK(?,?,0)")
SYNACK = parse_tcp_symbol("ACK+SYN(?,?,0)")
NIL = parse_tcp_symbol("NIL")


@pytest.fixture
def skeleton():
    """Fig. 4's sketch: s0 --ACK/NIL--> s0, s0 --SYN/ACK--> s1 loop."""
    alphabet = Alphabet.of([SYN, ACK])
    table = [
        ("s0", ACK, NIL, "s0"),
        ("s0", SYN, SYNACK, "s1"),
        ("s1", SYN, NIL, "s1"),
        ("s1", ACK, NIL, "s1"),
    ]
    return mealy_from_table("s0", alphabet, table, "fig4")


def step(symbol, out, sn, an, **outputs):
    return ConcreteStep(symbol, out, {"sn": sn, "an": an}, outputs)


class TestTerms:
    def test_evaluation(self):
        registers = {"r": 5}
        inputs = {"sn": 9}
        assert RegisterTerm("r").evaluate(registers, inputs) == 5
        assert InputTerm("sn").evaluate(registers, inputs) == 9
        assert ConstTerm(3).evaluate(registers, inputs) == 3
        assert PlusOne(RegisterTerm("r")).evaluate(registers, inputs) == 6
        assert PlusOne(InputTerm("sn")).evaluate(registers, inputs) == 10

    def test_rendering(self):
        assert str(PlusOne(InputTerm("sn"))) == "sn+1"
        assert str(ConstTerm(0)) == "0"

    def test_complexity_ordering(self):
        menu = candidate_terms(["r"], ["sn"], constants=[0])
        complexities = [term_complexity(t) for t in menu]
        assert complexities == sorted(complexities)
        assert isinstance(menu[0], RegisterTerm)

    def test_paper_menu_size(self):
        # [r, r+1, pr, pr+1, pi, pi+1, sn, an] -- the 8-term list of 4.3.
        menu = candidate_terms(
            ["r", "pr", "pi"], ["sn", "an"], constants=(), allow_increment=True
        )
        assert len(menu) == 10  # 3 regs x2 + 2 inputs x2

    def test_mine_constants_orders_by_frequency(self):
        traces = [
            [
                ConcreteStep(SYN, SYNACK, {}, {"v": 0}),
                ConcreteStep(SYN, SYNACK, {}, {"v": 0}),
                ConcreteStep(SYN, SYNACK, {}, {"v": 7}),
            ]
        ]
        assert mine_constants(traces, ["v"]) == [0, 7]


class TestBuildProblem:
    def test_unknowns_only_for_visited_transitions(self, skeleton):
        traces = [[step(ACK, NIL, 0, 3)]]
        problem = build_problem(skeleton, traces, register_names=("r",))
        transitions = {u.transition for u in problem.candidates if u.kind == "update"}
        assert transitions == {("s0", ACK)}

    def test_initial_register_unknowns_present(self, skeleton):
        traces = [[step(ACK, NIL, 0, 3)]]
        problem = build_problem(skeleton, traces, register_names=("r",))
        initials = [u for u in problem.candidates if u.kind == "initial"]
        assert len(initials) == 1

    def test_search_space_counts(self, skeleton):
        traces = [[step(ACK, NIL, 0, 3)]]
        problem = build_problem(skeleton, traces, register_names=("r",))
        assert problem.search_space() > 1


class TestSolver:
    def test_fig4_synthesis(self, skeleton):
        """The worked example of section 4.3: learn register terms.

        Two registers suffice for the worked example's traces (the paper
        uses three with Z3; our DFS solver handles two comfortably -- the
        scaling note lives in DESIGN.md).
        """
        t1 = [
            step(ACK, NIL, sn=0, an=3),
            step(SYN, SYNACK, sn=2, an=5, o1=4, o2=5),
        ]
        t2 = [
            step(SYN, SYNACK, sn=1, an=3, o1=3, o2=4),
        ]
        result = synthesize(skeleton, [t1, t2], register_names=("r", "pr"))
        assert result is not None
        machine = result.machine
        assert machine.consistent_with(t1)
        assert machine.consistent_with(t2)

    def test_fig4_cross_register_copy_found(self, skeleton):
        """The 2-register solution uses a genuine cross-register pattern."""
        t1 = [
            step(ACK, NIL, sn=0, an=3),
            step(SYN, SYNACK, sn=2, an=5, o1=4, o2=5),
        ]
        t2 = [
            step(SYN, SYNACK, sn=1, an=3, o1=3, o2=4),
        ]
        result = synthesize(skeleton, [t1, t2], register_names=("r", "pr"))
        terms = {u.render(): str(t) for u, t in result.assignment.items()}
        assert any(u.startswith("output:o1") for u in terms)
        assert any(u.startswith("output:o2") for u in terms)

    def test_unsat_detected(self, skeleton):
        # Same transition, same inputs, contradictory outputs, no register
        # path can explain it (single register, no inputs vary).
        t1 = [step(SYN, SYNACK, sn=1, an=1, o1=10)]
        t2 = [step(SYN, SYNACK, sn=1, an=1, o1=20)]
        result = synthesize(
            skeleton, [t1, t2], register_names=("r",), allow_increment=False
        )
        assert result is None

    def test_budget_exceeded_raises_in_solver(self, skeleton):
        t1 = [step(SYN, SYNACK, sn=1, an=1, o1=10)]
        t2 = [step(SYN, SYNACK, sn=1, an=1, o1=20)]
        problem = build_problem(skeleton, [t1, t2], register_names=("r",))
        solver = TraceSolver(problem, [t1, t2], max_branches=2)
        with pytest.raises(SearchBudgetExceeded):
            solver.solve()

    def test_budget_exceeded_returns_none_via_synthesize(self, skeleton):
        t1 = [step(SYN, SYNACK, sn=1, an=1, o1=10)]
        t2 = [step(SYN, SYNACK, sn=1, an=1, o1=20)]
        assert (
            synthesize(
                skeleton, [t1, t2], register_names=("r",), max_branches=2
            )
            is None
        )

    def test_negative_trace_rejects_solution(self, skeleton):
        positive = [[step(SYN, SYNACK, sn=2, an=5, o1=5)]]
        # The observed o1 == an; forbid the machine that reproduces a
        # different trace where o1 == an as well.
        negative = [[step(SYN, SYNACK, sn=9, an=7, o1=7)]]
        result = synthesize(
            skeleton,
            positive,
            register_names=("r",),
            negative_traces=negative,
        )
        # A solution must fit the positive trace but NOT the negative one:
        # o1 = an is excluded, so expect e.g. the constant 5.
        assert result is not None
        machine = result.machine
        assert machine.consistent_with(positive[0])
        assert not machine.consistent_with(negative[0])


class TestConstantDetector:
    def test_constant_zero_detected(self, skeleton):
        traces = [
            [step(SYN, SYNACK, sn=i, an=i + 2, msd=0)] for i in range(3)
        ]
        result = synthesize(skeleton, traces, register_names=("r",))
        assert result is not None
        assert result.constant_output("msd") == 0

    def test_varying_value_not_constant(self, skeleton):
        traces = [
            [step(SYN, SYNACK, sn=5, an=0, msd=5)],
            [step(SYN, SYNACK, sn=9, an=0, msd=9)],
        ]
        result = synthesize(skeleton, traces, register_names=("r",))
        assert result is not None
        assert result.constant_output("msd") is None

    def test_unmodelled_parameter_is_none(self, skeleton):
        traces = [[step(SYN, SYNACK, sn=1, an=2, msd=0)]]
        result = synthesize(skeleton, traces, register_names=("r",))
        assert result.constant_output("nonexistent") is None


class TestCegis:
    def test_cegis_refines_with_fresh_traces(self, skeleton):
        # Initial trace admits o1 = 7 as a constant; fresh traces with other
        # sn values force the input-dependent solution o1 = sn + 1.
        initial = [[step(SYN, SYNACK, sn=6, an=0, o1=7)]]
        fresh_pool = [
            [[step(SYN, SYNACK, sn=1, an=0, o1=2)]],
            [[step(SYN, SYNACK, sn=3, an=0, o1=4)]],
        ]

        def provider(round_number):
            if round_number <= len(fresh_pool):
                return fresh_pool[round_number - 1]
            return []

        result = synthesize_with_cegis(
            skeleton,
            initial,
            provider,
            register_names=("r",),
            max_rounds=4,
        )
        assert result is not None
        for trace_set in fresh_pool:
            assert result.machine.consistent_with(trace_set[0])

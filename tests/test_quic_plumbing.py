"""Unit tests: transport params, flow control, streams, packet spaces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.quic.flowcontrol import (
    FlowControlError,
    ReceiveFlowController,
    SendFlowController,
)
from repro.quic.frames import AckFrame, AckRange
from repro.quic.packetspace import PacketNumberSpace
from repro.quic.streams import ReceiveStream, SendStream, StreamError
from repro.quic.transport_params import TransportParameters


class TestTransportParameters:
    def test_roundtrip_defaults(self):
        params = TransportParameters()
        decoded = TransportParameters.decode(params.encode())
        assert decoded.initial_max_data == params.initial_max_data
        assert (
            decoded.initial_max_stream_data_bidi_remote
            == params.initial_max_stream_data_bidi_remote
        )

    def test_roundtrip_custom(self):
        params = TransportParameters(
            max_idle_timeout=5,
            initial_max_data=123,
            initial_max_stream_data_bidi_local=7,
            initial_max_stream_data_bidi_remote=9,
            initial_max_streams_bidi=2,
            original_dcid=b"\x01\x02",
        )
        decoded = TransportParameters.decode(params.encode())
        assert decoded.original_dcid == b"\x01\x02"
        assert decoded.initial_max_streams_bidi == 2

    def test_unknown_params_preserved(self):
        params = TransportParameters(unknown={0x7F: b"xyz"})
        decoded = TransportParameters.decode(params.encode())
        assert decoded.unknown == {0x7F: b"xyz"}

    def test_retry_source_cid(self):
        params = TransportParameters(retry_source_cid=b"retry-id")
        decoded = TransportParameters.decode(params.encode())
        assert decoded.retry_source_cid == b"retry-id"


class TestSendFlowController:
    def test_consume_within_limit(self):
        flow = SendFlowController(limit=10)
        assert flow.consume(6) == 6
        assert not flow.is_blocked

    def test_consume_cut_short_records_blocked_at(self):
        flow = SendFlowController(limit=10)
        assert flow.consume(15) == 10
        assert flow.is_blocked
        assert flow.blocked_at == 10

    def test_raise_limit_unblocks(self):
        flow = SendFlowController(limit=5)
        flow.consume(7)
        assert flow.is_blocked
        assert flow.raise_limit(12)
        assert not flow.is_blocked
        assert flow.available() == 7

    def test_limits_never_regress(self):
        flow = SendFlowController(limit=10)
        assert not flow.raise_limit(5)
        assert flow.limit == 10

    def test_receive_side_enforces_limit(self):
        flow = ReceiveFlowController(limit=10)
        flow.on_data(10)
        with pytest.raises(FlowControlError):
            flow.on_data(11)

    def test_receive_grant(self):
        flow = ReceiveFlowController(limit=10)
        assert flow.grant(5) == 15


class TestReceiveStream:
    def test_in_order_reassembly(self):
        stream = ReceiveStream()
        stream.flow.limit = 100
        stream.on_frame(0, b"ab", fin=False)
        stream.on_frame(2, b"cd", fin=False)
        assert stream.readable() == b"abcd"

    def test_out_of_order_reassembly(self):
        stream = ReceiveStream()
        stream.flow.limit = 100
        stream.on_frame(2, b"cd", fin=False)
        assert stream.readable() == b""
        stream.on_frame(0, b"ab", fin=False)
        assert stream.readable() == b"abcd"

    def test_consume_pops_prefix(self):
        stream = ReceiveStream()
        stream.flow.limit = 100
        stream.on_frame(0, b"abcdef", fin=False)
        assert stream.consume(4) == b"abcd"
        assert stream.readable() == b"ef"

    def test_final_size_enforced(self):
        stream = ReceiveStream()
        stream.flow.limit = 100
        stream.on_frame(0, b"ab", fin=True)
        with pytest.raises(StreamError):
            stream.on_frame(2, b"c", fin=False)

    def test_conflicting_final_sizes(self):
        stream = ReceiveStream()
        stream.flow.limit = 100
        stream.on_frame(0, b"ab", fin=True)
        with pytest.raises(StreamError):
            stream.on_frame(0, b"a", fin=True)

    def test_finished(self):
        stream = ReceiveStream()
        stream.flow.limit = 100
        stream.on_frame(0, b"ab", fin=True)
        stream.consume(2)
        assert stream.finished


class TestSendStream:
    def test_drain_under_credit(self):
        stream = SendStream()
        stream.flow.limit = 10
        stream.write(b"hello")
        offset, data, fin = stream.drain()
        assert (offset, data, fin) == (0, b"hello", False)

    def test_drain_blocked(self):
        stream = SendStream()
        stream.flow.limit = 3
        stream.write(b"hello")
        offset, data, fin = stream.drain()
        assert data == b"hel"
        assert stream.is_blocked
        assert stream.flow.blocked_at == 3

    def test_fin_on_last_byte(self):
        stream = SendStream()
        stream.flow.limit = 10
        stream.write(b"hi", fin=True)
        _, _, fin = stream.drain()
        assert fin
        assert stream.fin_sent

    def test_write_after_fin_rejected(self):
        stream = SendStream()
        stream.write(b"x", fin=True)
        with pytest.raises(StreamError):
            stream.write(b"y")

    def test_offsets_advance(self):
        stream = SendStream()
        stream.flow.limit = 100
        stream.write(b"abc")
        stream.drain()
        stream.write(b"def")
        offset, data, _ = stream.drain()
        assert offset == 3
        assert data == b"def"


class TestPacketNumberSpace:
    def test_take_increments(self):
        space = PacketNumberSpace()
        assert [space.take_packet_number() for _ in range(3)] == [0, 1, 2]

    def test_duplicate_detection(self):
        space = PacketNumberSpace()
        assert space.on_received(5)
        assert not space.on_received(5)

    def test_ack_covers_received(self):
        space = PacketNumberSpace()
        for pn in (0, 1, 2, 5):
            space.on_received(pn)
        ack = space.build_ack()
        assert ack.largest_acknowledged == 5
        assert ack.acknowledges(1)
        assert not ack.acknowledges(4)

    def test_empty_space_has_no_ack(self):
        assert PacketNumberSpace().build_ack() is None

    def test_reset_forgets_everything(self):
        space = PacketNumberSpace()
        space.take_packet_number()
        space.on_received(3)
        space.reset()
        assert space.next_packet_number == 0
        assert space.build_ack() is None

    def test_on_ack_tracks_largest(self):
        space = PacketNumberSpace()
        space.on_ack(AckFrame(7, 0, (AckRange(0, 7),)))
        assert space.largest_acked_by_peer == 7


@given(
    chunks=st.lists(st.binary(min_size=1, max_size=10), min_size=1, max_size=8)
)
@settings(max_examples=100, deadline=None)
def test_reassembly_order_independent(chunks):
    """Delivering segments in any order yields the same byte stream."""
    offsets = []
    cursor = 0
    for chunk in chunks:
        offsets.append((cursor, chunk))
        cursor += len(chunk)
    expected = b"".join(chunks)

    in_order = ReceiveStream()
    in_order.flow.limit = 10_000
    for offset, chunk in offsets:
        in_order.on_frame(offset, chunk, fin=False)

    reversed_stream = ReceiveStream()
    reversed_stream.flow.limit = 10_000
    for offset, chunk in reversed(offsets):
        reversed_stream.on_frame(offset, chunk, fin=False)

    assert in_order.readable() == expected
    assert reversed_stream.readable() == expected

"""Tests for the HTTP/2 frame codec: wire round-trips and the decoder."""

import pytest

from repro.http2.frames import (
    DEFAULT_MAX_FRAME_SIZE,
    ErrorCode,
    FLAG_ACK,
    FLAG_END_STREAM,
    Frame,
    FrameDecoder,
    FrameError,
    FrameType,
    Setting,
    data_frame,
    goaway_frame,
    headers_frame,
    parse_goaway,
    parse_rst_stream,
    parse_settings,
    parse_window_update,
    ping_frame,
    rst_stream_frame,
    settings_frame,
    window_update_frame,
)


def roundtrip(frame: Frame) -> Frame:
    decoded, consumed = Frame.decode(frame.encode())
    assert consumed == len(frame.encode())
    return decoded


class TestFrameCodec:
    def test_header_layout(self):
        frame = Frame(FrameType.DATA, FLAG_END_STREAM, 7, b"abc")
        wire = frame.encode()
        assert wire[:3] == (3).to_bytes(3, "big")
        assert wire[3] == FrameType.DATA
        assert wire[4] == FLAG_END_STREAM
        assert int.from_bytes(wire[5:9], "big") == 7
        assert wire[9:] == b"abc"

    @pytest.mark.parametrize(
        "frame",
        [
            data_frame(1, b"hello", end_stream=True),
            headers_frame(3, b"\x82\x84", end_stream=False),
            headers_frame(5, b"", end_stream=True),
            rst_stream_frame(1, ErrorCode.CANCEL),
            settings_frame({Setting.ENABLE_PUSH: 0, Setting.MAX_FRAME_SIZE: 16384}),
            settings_frame(ack=True),
            ping_frame(b"12345678"),
            ping_frame(b"12345678", ack=True),
            goaway_frame(9, ErrorCode.PROTOCOL_ERROR, debug=b"dbg"),
            window_update_frame(0, 1024),
        ],
        ids=lambda f: FrameType(f.frame_type).name,
    )
    def test_roundtrip(self, frame):
        assert roundtrip(frame) == frame

    def test_incomplete_buffer_returns_none(self):
        wire = data_frame(1, b"hello").encode()
        for cut in (0, 5, len(wire) - 1):
            frame, consumed = Frame.decode(wire[:cut])
            assert frame is None and consumed == 0

    def test_oversized_frame_rejected(self):
        wire = (DEFAULT_MAX_FRAME_SIZE + 1).to_bytes(3, "big") + bytes(6)
        with pytest.raises(FrameError):
            Frame.decode(wire)

    def test_stream_id_out_of_range(self):
        with pytest.raises(FrameError):
            Frame(FrameType.DATA, 0, 2**31)

    def test_flag_names_per_type(self):
        headers = headers_frame(1, b"", end_stream=True)
        assert headers.flag_names() == ("END_STREAM", "END_HEADERS")
        assert settings_frame(ack=True).flag_names() == ("ACK",)
        # The ACK bit position equals END_STREAM's, but only the names
        # defined for the type are rendered.
        assert FLAG_ACK == FLAG_END_STREAM
        assert rst_stream_frame(1, 0).flag_names() == ()

    def test_end_stream_only_on_data_and_headers(self):
        assert data_frame(1, b"", end_stream=True).end_stream
        assert headers_frame(1, b"", end_stream=True).end_stream
        assert not settings_frame(ack=True).end_stream  # ACK bit, not END_STREAM


class TestPayloadParsers:
    def test_settings_roundtrip(self):
        frame = settings_frame({Setting.MAX_CONCURRENT_STREAMS: 16})
        assert parse_settings(frame) == {Setting.MAX_CONCURRENT_STREAMS: 16}

    def test_settings_ack_must_be_empty(self):
        with pytest.raises(FrameError):
            settings_frame({Setting.ENABLE_PUSH: 0}, ack=True)

    def test_settings_bad_length(self):
        with pytest.raises(FrameError):
            parse_settings(Frame(FrameType.SETTINGS, 0, 0, b"\x00\x01"))

    def test_rst_stream_roundtrip(self):
        assert parse_rst_stream(rst_stream_frame(3, ErrorCode.STREAM_CLOSED)) == (
            ErrorCode.STREAM_CLOSED
        )

    def test_goaway_roundtrip(self):
        last, code = parse_goaway(goaway_frame(5, ErrorCode.NO_ERROR))
        assert (last, code) == (5, ErrorCode.NO_ERROR)

    def test_window_update_roundtrip(self):
        assert parse_window_update(window_update_frame(1, 4096)) == 4096

    def test_window_update_zero_increment_rejected(self):
        with pytest.raises(FrameError):
            window_update_frame(1, 0)

    def test_ping_payload_length_enforced(self):
        with pytest.raises(FrameError):
            ping_frame(b"short")


class TestFrameDecoder:
    def frames(self):
        return [
            settings_frame({Setting.ENABLE_PUSH: 0}),
            headers_frame(1, b"\x82", end_stream=True),
            ping_frame(b"abcdefgh"),
        ]

    def test_single_feed(self):
        wire = b"".join(f.encode() for f in self.frames())
        assert FrameDecoder().feed(wire) == self.frames()

    def test_byte_at_a_time(self):
        decoder = FrameDecoder()
        wire = b"".join(f.encode() for f in self.frames())
        out = []
        for i in range(len(wire)):
            out.extend(decoder.feed(wire[i : i + 1]))
        assert out == self.frames()
        assert decoder.buffered == 0

    def test_split_mid_frame(self):
        decoder = FrameDecoder()
        wire = data_frame(1, b"payload", end_stream=True).encode()
        assert decoder.feed(wire[:10]) == []
        assert decoder.buffered == 10
        (frame,) = decoder.feed(wire[10:])
        assert frame.payload == b"payload"

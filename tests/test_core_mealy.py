"""Unit and property tests for Mealy machines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alphabet import Alphabet, TCPSymbol
from repro.core.mealy import MealyError, MealyMachine, behavior_fingerprint

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
SYNACK = TCPSymbol.make(["SYN", "ACK"])
NIL = TCPSymbol(label="NIL")


class TestConstruction:
    def test_incomplete_machine_rejected(self, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        with pytest.raises(MealyError):
            MealyMachine("s0", ab_alphabet, {("s0", syn): ("s0", NIL)})

    def test_unreachable_states_dropped(self, ab_alphabet, toy_machine):
        syn, ack = ab_alphabet.symbols
        table = {(t.source, t.input): (t.target, t.output) for t in toy_machine.transitions()}
        table[("orphan", syn)] = ("orphan", NIL)
        table[("orphan", ack)] = ("orphan", NIL)
        machine = MealyMachine("s0", ab_alphabet, table)
        assert "orphan" not in machine.states

    def test_counts(self, toy_machine):
        assert toy_machine.num_states == 3
        assert toy_machine.num_transitions == 6


class TestExecution:
    def test_run_produces_outputs(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        outputs = toy_machine.run((syn, ack))
        assert outputs == (SYNACK, NIL)

    def test_state_after(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        assert toy_machine.state_after(()) == "s0"
        assert toy_machine.state_after((syn, ack)) == "s2"

    def test_step_unknown_symbol_raises(self, toy_machine):
        foreign = TCPSymbol.make(["URG"])
        with pytest.raises(MealyError):
            toy_machine.step("s0", foreign)

    def test_trace(self, toy_machine, ab_alphabet):
        syn, _ = ab_alphabet.symbols
        trace = toy_machine.trace((syn,))
        assert trace.inputs == (syn,)
        assert trace.outputs == (SYNACK,)


class TestMinimization:
    def test_redundant_state_merged(self, redundant_machine, toy_machine):
        minimal = redundant_machine.minimize()
        assert minimal.num_states == toy_machine.num_states

    def test_minimization_preserves_behaviour(self, redundant_machine, ab_alphabet):
        minimal = redundant_machine.minimize()
        syn, ack = ab_alphabet.symbols
        for word in [(syn,), (ack, syn), (syn, ack, syn), (ack, ack, syn, ack)]:
            assert minimal.run(word) == redundant_machine.run(word)

    def test_already_minimal_is_stable(self, toy_machine):
        assert toy_machine.minimize().num_states == toy_machine.num_states


class TestCanonicalization:
    def test_relabel_names_are_bfs(self, toy_machine):
        relabeled = toy_machine.relabel()
        assert relabeled.initial_state == "s0"
        assert set(relabeled.states) == {"s0", "s1", "s2"}

    def test_structural_equality_after_relabel(self, redundant_machine, toy_machine):
        assert redundant_machine.minimize().structurally_equal(
            toy_machine.minimize()
        )


class TestTestSuites:
    def test_access_sequences_reach_all_states(self, toy_machine):
        access = toy_machine.access_sequences()
        assert set(access) == set(toy_machine.states)
        for state, word in access.items():
            assert toy_machine.state_after(word) == state

    def test_transition_cover_size(self, toy_machine):
        cover = toy_machine.transition_cover()
        assert len(cover) == toy_machine.num_transitions

    def test_characterization_set_distinguishes_all_pairs(self, toy_machine):
        w_set = toy_machine.characterization_set()
        states = list(toy_machine.states)
        for i, a in enumerate(states):
            for b in states[i + 1:]:
                assert any(
                    toy_machine.run(w, a) != toy_machine.run(w, b) for w in w_set
                ), f"{a} and {b} not distinguished"

    def test_distinguishing_suffix_none_for_same_state(self, toy_machine):
        assert toy_machine.distinguishing_suffix("s0", "s0") is None

    def test_w_method_suite_catches_mutant(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        # Mutate one transition's output.
        table = {
            (t.source, t.input): (t.target, t.output)
            for t in toy_machine.transitions()
        }
        table[("s1", ack)] = ("s2", SYNACK)
        mutant = MealyMachine("s0", ab_alphabet, table, "mutant")
        suite = toy_machine.w_method_suite(extra_states=0)
        assert any(toy_machine.run(w) != mutant.run(w) for w in suite)

    def test_dot_contains_all_edges(self, toy_machine):
        dot = toy_machine.to_dot()
        assert dot.count("->") >= toy_machine.num_transitions
        assert "digraph" in dot


class TestSerialization:
    def test_to_dict_round_trip_is_lossless(self, toy_machine):
        data = toy_machine.to_dict()
        restored = MealyMachine.from_dict(data)
        assert restored.to_dict() == data
        assert restored.structurally_equal(toy_machine)
        assert restored.to_dot() == toy_machine.to_dot()

    def test_to_dict_is_json_stable(self, toy_machine):
        import json

        text = json.dumps(toy_machine.to_dict())
        restored = MealyMachine.from_dict(json.loads(text))
        assert json.dumps(restored.to_dict()) == text

    def test_quic_output_symbols_round_trip(self):
        from repro.core.alphabet import parse_quic_output, parse_quic_symbol

        ch = parse_quic_symbol("INITIAL(?,?)[CRYPTO]")
        hello = parse_quic_output(
            "{HANDSHAKE(?,?)[CRYPTO],INITIAL(?,?)[ACK,CRYPTO]}"
        )
        silent = parse_quic_output("{}")
        machine = MealyMachine(
            "s0",
            Alphabet.of([ch]),
            {("s0", ch): ("s1", hello), ("s1", ch): ("s1", silent)},
            name="quic-toy",
        )
        restored = MealyMachine.from_dict(machine.to_dict())
        assert restored.to_dict() == machine.to_dict()
        assert restored.run((ch, ch)) == (hello, silent)

    def test_malformed_symbol_rejected(self):
        from repro.core.alphabet import SymbolError, deserialize_symbol

        with pytest.raises(SymbolError):
            deserialize_symbol({"kind": "martian", "text": "X"})
        with pytest.raises(SymbolError):
            deserialize_symbol({"text": "X"})


class TestFingerprint:
    def test_fingerprint_equal_for_equivalent(self, redundant_machine, toy_machine):
        assert behavior_fingerprint(redundant_machine, 3) == behavior_fingerprint(
            toy_machine, 3
        )


# ---------------------------------------------------------------------------
# Property-based: random machines keep behaviour through minimize/relabel
# ---------------------------------------------------------------------------

_SYMS = [SYN, ACK]
_OUTS = [SYNACK, NIL, TCPSymbol(label="RST(?,?,0)")]


@st.composite
def random_machine(draw):
    num_states = draw(st.integers(min_value=1, max_value=6))
    alphabet = Alphabet.of(_SYMS)
    table = {}
    for state in range(num_states):
        for symbol in _SYMS:
            target = draw(st.integers(min_value=0, max_value=num_states - 1))
            output = draw(st.sampled_from(_OUTS))
            table[(state, symbol)] = (target, output)
    return MealyMachine(0, alphabet, table, "random")


@st.composite
def machine_and_words(draw):
    machine = draw(random_machine())
    words = draw(
        st.lists(
            st.lists(st.sampled_from(_SYMS), min_size=1, max_size=8).map(tuple),
            min_size=1,
            max_size=5,
        )
    )
    return machine, words


@given(machine_and_words())
@settings(max_examples=60, deadline=None)
def test_minimize_preserves_behaviour(machine_words):
    machine, words = machine_words
    minimal = machine.minimize()
    assert minimal.num_states <= machine.num_states
    for word in words:
        assert machine.run(word) == minimal.run(word)


@given(machine_and_words())
@settings(max_examples=60, deadline=None)
def test_relabel_preserves_behaviour(machine_words):
    machine, words = machine_words
    relabeled = machine.relabel()
    for word in words:
        assert machine.run(word) == relabeled.run(word)


@given(random_machine())
@settings(max_examples=40, deadline=None)
def test_minimize_is_idempotent(machine):
    once = machine.minimize()
    twice = once.minimize()
    assert once.structurally_equal(twice)


@given(machine_and_words())
@settings(max_examples=60, deadline=None)
def test_dict_round_trip_preserves_behaviour(machine_words):
    # Symbols serialize via their canonical label, so for hand-built
    # (non-canonical) symbols behaviour is preserved up to rendering;
    # parser/adapter-built symbols round-trip exactly (TestSerialization).
    machine, words = machine_words
    restored = MealyMachine.from_dict(machine.to_dict())
    for word in words:
        assert [str(o) for o in machine.run(word)] == [
            str(o) for o in restored.run(word)
        ]


@given(random_machine())
@settings(max_examples=40, deadline=None)
def test_dict_round_trip_is_lossless_after_relabel(machine):
    relabeled = machine.relabel()
    data = relabeled.to_dict()
    assert MealyMachine.from_dict(data).to_dict() == data

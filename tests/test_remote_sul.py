"""Tests for the real-boundary adapter: SocketSUL/SubprocessSUL + server.

Covers the happy path (a remote target answers exactly like its
in-process twin, Oracle-Table recording included) and every fault path
the ISSUE names: a server that hangs (timeout fires, worker respawns), a
server that crashes mid-word (query retried once, the extra reset is
counted), and a server that answers garbage (clean diagnostic, no hang,
no retry).
"""

import json

import pytest

from repro.adapter.remote import (
    RemoteDisconnectError,
    RemoteProtocolError,
    RemoteSULError,
    SubprocessSUL,
    SULTimeoutError,
)
from repro.adapter.tcp_adapter import TCPAdapterSUL
from repro.registry import SUL_REGISTRY, load_builtins


@pytest.fixture(scope="module")
def tcp_words():
    local = TCPAdapterSUL(seed=3)
    alpha = local.input_alphabet.symbols
    return [(alpha[i % 7], alpha[(i + 3) % 7]) for i in range(6)]


def _spawn(**kwargs):
    server_args = kwargs.pop("server_args", [])
    return SubprocessSUL(
        "tcp", {"seed": 3}, server_args=server_args, **kwargs
    )


class TestHappyPath:
    def test_answers_match_the_in_process_adapter(self, tcp_words):
        local = TCPAdapterSUL(seed=3)
        remote = _spawn()
        try:
            assert [s.label for s in remote.input_alphabet.symbols] == [
                s.label for s in local.input_alphabet.symbols
            ]
            assert [remote.query(w) for w in tcp_words] == [
                local.query(w) for w in tcp_words
            ]
            assert remote.respawns == 0
        finally:
            remote.close()

    def test_oracle_table_records_across_the_boundary(self, tcp_words):
        remote = _spawn()
        try:
            word = tcp_words[0]
            remote.query(word)
            entry = remote.oracle_table.lookup(word)
            assert entry is not None
            assert len(entry.steps) == len(word)
            # concrete params made the round-trip, not just abstract labels
            assert all(
                isinstance(step.output_params, dict) for step in entry.steps
            )
        finally:
            remote.close()

    def test_stats_count_like_a_local_sul(self, tcp_words):
        remote = _spawn()
        try:
            for word in tcp_words:
                remote.query(word)
            assert remote.stats.queries == len(tcp_words)
            assert remote.stats.resets == len(tcp_words)
            assert remote.stats.steps == sum(len(w) for w in tcp_words)
        finally:
            remote.close()

    def test_registry_targets_registered(self):
        load_builtins()
        assert "remote" in SUL_REGISTRY
        assert "remote-tcp" in SUL_REGISTRY
        # "remote-tcp" joins the "remote" family, NOT the "tcp" family:
        # `repro difftest tcp` must keep its historical matrix size.
        families = SUL_REGISTRY.families()
        assert "remote-tcp" in families["remote"]
        assert "remote-tcp" not in families["tcp"]


class TestFaultPaths:
    def test_hang_times_out_and_respawns(self, tcp_words):
        remote = _spawn(
            timeout_s=0.5, server_args=["--hang-after-steps", "3"]
        )
        try:
            remote.query(tcp_words[0])  # steps 1-2
            # step 3 ok, step 4 hangs -> timeout -> respawn -> retry works
            assert remote.query(tcp_words[1]) == TCPAdapterSUL(seed=3).query(
                tcp_words[1]
            )
            assert remote.respawns == 1
        finally:
            remote.close()

    def test_crash_mid_word_retries_once_and_counts_the_extra_reset(
        self, tcp_words
    ):
        remote = _spawn(server_args=["--crash-after-steps", "3"])
        try:
            remote.query(tcp_words[0])
            assert remote.query(tcp_words[1]) == TCPAdapterSUL(seed=3).query(
                tcp_words[1]
            )
            assert remote.respawns == 1
            assert remote.stats.queries == 2
            # the aborted attempt's reset is real work and stays counted
            assert remote.stats.resets == 3
            assert remote.stats.steps == 6  # 2 + (1 aborted) + 1 + 2
        finally:
            remote.close()

    def test_retries_are_bounded(self, tcp_words):
        # Crashing on the very first step can never succeed: the retry
        # must give up instead of respawning forever.
        remote = _spawn(server_args=["--crash-after-steps", "0"])
        try:
            with pytest.raises(RemoteDisconnectError):
                remote.query(tcp_words[0])
            assert remote.respawns == remote.retries == 1
        finally:
            remote.close()

    def test_garbage_raises_a_clean_diagnostic_without_retry(self, tcp_words):
        remote = _spawn(
            timeout_s=2.0, server_args=["--garbage-after-steps", "1"]
        )
        try:
            with pytest.raises(RemoteProtocolError, match="not JSON"):
                remote.query(tcp_words[0])
            # a confused peer is not hammered with retries
            assert remote.respawns == 0
        finally:
            remote.close()

    def test_error_taxonomy(self):
        assert issubclass(SULTimeoutError, RemoteSULError)
        assert issubclass(RemoteDisconnectError, RemoteSULError)
        assert issubclass(RemoteProtocolError, RemoteSULError)

    def test_server_failing_to_start_is_reported(self):
        with pytest.raises(RemoteDisconnectError, match="failed to start"):
            SubprocessSUL("no-such-target", {})


class TestRemoteRegistryTarget:
    def test_remote_learn_matches_local_model(self):
        from repro.campaign import run_spec
        from repro.spec import ExperimentSpec

        remote = run_spec(
            ExperimentSpec(target="remote-tcp", seed=7, name="m")
        )
        local = run_spec(ExperimentSpec(target="tcp", seed=7, name="m"))
        assert remote.ok, remote.error
        assert json.dumps(
            remote.model.minimize().to_dict(), sort_keys=True
        ) == json.dumps(local.model.minimize().to_dict(), sort_keys=True)

"""Tests for the composed HTTP/3 target: alpha/gamma, registry, probes."""

import pytest

from repro.adapter.h3_adapter import build_http3_sul
from repro.adapter.layered import LayeredSUL, StreamEvent
from repro.core.alphabet import (
    H3_EMPTY_OUTPUT,
    deserialize_symbol,
    parse_h3_output,
    parse_h3_symbol,
    parse_tcp_symbol,
    serialize_symbol,
)
from repro.experiments import (
    EXPECTED_H3_BUGGY_STATES,
    EXPECTED_H3_STATES,
    EXPECTED_H3_TRANSITIONS,
    hol_blocking_probe,
    learn_http3,
    migration_probe,
    resumption_probe,
    run_http3_request,
)
from repro.registry import SUL_REGISTRY, load_builtins

SETTINGS = parse_h3_symbol("SETTINGS")
REQUEST = parse_h3_symbol("HEADERS[FIN]")
GOAWAY = parse_h3_symbol("GOAWAY")


class TestAbstraction:
    def test_empty_exchange_is_the_nil_output(self):
        sul = build_http3_sul()
        try:
            assert sul.app.abstract_events([]) is H3_EMPTY_OUTPUT
            assert str(sul.app.abstract_events([])) == "{}"
        finally:
            sul.close()

    def test_reset_events_render_as_rst(self):
        sul = build_http3_sul()
        try:
            events = [StreamEvent(0, "reset", error_code=0x010B)]
            assert str(sul.app.abstract_events(events)) == "{RST}"
        finally:
            sul.close()

    def test_streams_render_sorted_by_id(self):
        sul = build_http3_sul()
        try:
            events = [
                StreamEvent(4, "reset", error_code=1),
                StreamEvent(0, "reset", error_code=1),
            ]
            assert str(sul.app.abstract_events(events)) == "{RST,RST}"
        finally:
            sul.close()


class TestSymbolCodec:
    def test_symbol_roundtrip(self):
        symbol = parse_h3_symbol("HEADERS[FIN]")
        data = serialize_symbol(symbol)
        assert data["kind"] == "h3"
        assert deserialize_symbol(data) == symbol

    def test_output_roundtrip(self):
        output = parse_h3_output("{HEADERS+DATA[FIN],RST}")
        data = serialize_symbol(output)
        assert data["kind"] == "h3-output"
        assert deserialize_symbol(data) == output

    def test_empty_output_roundtrip(self):
        assert deserialize_symbol(serialize_symbol(H3_EMPTY_OUTPUT)).is_empty


class TestH3SUL:
    def test_query_records_oracle_entry(self):
        sul = build_http3_sul()
        try:
            outputs = sul.query((SETTINGS, REQUEST))
            assert str(outputs[0]) == "{SETTINGS}"
            assert str(outputs[1]) == "{HEADERS+DATA[FIN]}"
            entry = sul.oracle_table.lookup((SETTINGS, REQUEST))
            assert entry is not None
            assert entry.steps[1].input_params["sid"] == 0
        finally:
            sul.close()

    def test_determinism_across_queries(self):
        sul = build_http3_sul()
        try:
            word = (SETTINGS, REQUEST, GOAWAY, REQUEST)
            assert sul.query(word) == sul.query(word)
        finally:
            sul.close()

    def test_foreign_symbol_rejected(self):
        sul = build_http3_sul()
        try:
            with pytest.raises(TypeError):
                sul.query((parse_tcp_symbol("SYN(?,?,0)"),))
        finally:
            sul.close()

    def test_registry_targets_present(self):
        load_builtins()
        assert "http3" in SUL_REGISTRY
        assert "http3-buggy" in SUL_REGISTRY

    def test_spec_configurable_quirk(self):
        sul = SUL_REGISTRY.create(
            "http3", server_config={"goaway_teardown_bug": True}
        )
        try:
            assert sul.server.config.goaway_teardown_bug
        finally:
            sul.close()

    def test_quirk_flag_delegates_through_the_layers(self):
        # `goaway_teardown_bug` is claimed by the app factory, and the
        # `server` attribute read is delegated LayeredSUL -> app layer.
        sul = build_http3_sul(goaway_teardown_bug=True)
        try:
            assert isinstance(sul, LayeredSUL)
            assert sul.server.config.goaway_teardown_bug
        finally:
            sul.close()

    def test_transport_claims_resumption(self):
        sul = build_http3_sul(resumption=True)
        try:
            assert sul.transport.resumption
        finally:
            sul.close()

    def test_unclaimed_param_rejected(self):
        with pytest.raises(TypeError, match="rst_on_closed_bug"):
            build_http3_sul(rst_on_closed_bug=True)

    def test_goaway_quirk_divergence(self):
        """The seeded quirk's minimized witness: after the drain
        handshake a new request draws {RST} (conformant) vs {} (buggy)."""
        word = (SETTINGS, GOAWAY, REQUEST)
        conformant = build_http3_sul()
        buggy = SUL_REGISTRY.create("http3-buggy")
        try:
            good = [str(o) for o in conformant.query(word)]
            bad = [str(o) for o in buggy.query(word)]
            assert good == ["{SETTINGS}", "{GOAWAY}", "{RST}"]
            assert bad == ["{SETTINGS}", "{GOAWAY}", "{}"]
        finally:
            conformant.close()
            buggy.close()


class TestLearnedModels:
    def test_pooled_equals_serial(self):
        """Acceptance: workers=4 learns a byte-identical model."""
        serial = learn_http3(workers=1)
        pooled = learn_http3(workers=4)
        try:
            assert serial.model.states == pooled.model.states
            assert serial.model.initial_state == pooled.model.initial_state
            for state in serial.model.states:
                for symbol in serial.model.input_alphabet:
                    assert serial.model.step(state, symbol) == pooled.model.step(
                        state, symbol
                    )
            assert serial.report.counterexamples == pooled.report.counterexamples
            assert serial.report.sul_queries == pooled.report.sul_queries
        finally:
            serial.close()
            pooled.close()

    def test_ttt_and_lstar_agree(self):
        """Acceptance: both learners converge to the same minimal machine."""
        ttt = learn_http3(learner="ttt")
        lstar = learn_http3(learner="lstar")
        try:
            assert ttt.model.num_states == EXPECTED_H3_STATES
            assert ttt.model.num_transitions == EXPECTED_H3_TRANSITIONS
            assert ttt.model.minimize().num_states == ttt.model.num_states
            assert ttt.model.relabel().structurally_equal(lstar.model.relabel())
        finally:
            ttt.close()
            lstar.close()

    def test_buggy_model_collapses_drain_states(self):
        buggy = learn_http3(goaway_teardown_bug=True)
        try:
            assert buggy.model.num_states == EXPECTED_H3_BUGGY_STATES
            outputs = run_http3_request(buggy.model)
            assert outputs[0] == ("SETTINGS", "{SETTINGS}")
            assert outputs[1] == ("HEADERS[FIN]", "{HEADERS+DATA[FIN]}")
        finally:
            buggy.close()


class TestScenarioProbes:
    def test_no_head_of_line_blocking_distinguishes_h3(self):
        """Acceptance: under one dropped datagram, H3 answers the
        surviving request immediately while HTTP/2-over-the-pipe answers
        neither until retransmission."""
        result = hol_blocking_probe()
        assert result["h3_first_exchange_answered"] == 1
        assert result["h2_first_exchange_answered"] == 0
        assert result["h3_after_recovery_answered"] == 2
        assert result["h2_after_recovery_answered"] == 2

    def test_migration_keeps_answering(self):
        result = migration_probe()
        assert result["answered_after_migration"]
        assert result["port_changed"]
        assert result["migrations"] == 1
        assert result["handshake_rounds"] == 1

    def test_resumption_skips_a_round(self):
        result = resumption_probe()
        assert result["zero_rtt"]
        assert result["second_response"] == result["first_response"] != "{}"
        assert result["second_connection_rounds"] < result[
            "first_connection_rounds"
        ]
        assert result["handshake_rounds"] == 1

"""Tests for the pluggable executor backends (serial / thread / process)."""

import os
import time

import pytest

from repro.adapter.executor import (
    EXECUTOR_KINDS,
    BatchExecutor,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    build_executor,
)


def _square(x):
    return x * x


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd item {x}")
    return x


def _die(x):
    os._exit(1)


def _die_once(marker_dir, x):
    """Crash the worker process the first time, succeed on the retry."""
    marker = os.path.join(marker_dir, f"crashed-{x}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(1)
    return x * 10


def _sleep_forever(x):
    time.sleep(3600)


def _sleepy_square(x):
    time.sleep(0.05 if x == 0 else 0.0)
    return x * x


class _Counter:
    """Picklable worker state: counts how many tasks this worker ran."""

    def __init__(self):
        self.calls = 0


def _make_counter():
    return _Counter()


def _count(state, x):
    state.calls += 1
    return (os.getpid(), state.calls, x)


@pytest.fixture(params=EXECUTOR_KINDS)
def executor(request):
    backend = build_executor(request.param, workers=4)
    yield backend
    backend.close()


class TestAllBackends:
    def test_preserves_order(self, executor):
        assert executor.map(_square, list(range(20))) == [
            x * x for x in range(20)
        ]

    def test_empty_batch(self, executor):
        assert executor.map(_square, []) == []

    def test_kind_matches(self, executor):
        assert executor.kind in EXECUTOR_KINDS

    def test_aggregates_all_failures(self, executor):
        """Satellite regression: every failing item is named, not just the
        first -- the old ``ThreadPoolExecutor.map`` raised on the first
        failure and silently discarded the rest of the batch."""
        with pytest.raises(ExecutorError) as excinfo:
            executor.map(_fail_on_odd, list(range(6)))
        error = excinfo.value
        assert [index for index, _, _ in error.failures] == [1, 3, 5]
        assert error.total == 6
        assert "3/6 items failed" in str(error)
        assert "odd item 3" in str(error)

    def test_failure_names_the_item(self, executor):
        with pytest.raises(ExecutorError, match=r"item=5"):
            executor.map(_fail_on_odd, [2, 5, 8])

    def test_context_manager(self):
        for kind in EXECUTOR_KINDS:
            with build_executor(kind, workers=2) as backend:
                assert backend.map(_square, [3]) == [9]

    def test_rejects_zero_workers(self):
        for kind in EXECUTOR_KINDS:
            with pytest.raises(ValueError):
                build_executor(kind, workers=0)


class TestBuildExecutor:
    def test_kinds(self):
        assert isinstance(build_executor("serial", 1), SerialExecutor)
        assert isinstance(build_executor("thread", 2), ThreadExecutor)
        assert isinstance(build_executor("process", 2), ProcessExecutor)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            build_executor("gpu", 2)


class TestThreadExecutor:
    def test_batch_executor_is_the_thread_backend(self):
        assert issubclass(BatchExecutor, ThreadExecutor)
        assert BatchExecutor(workers=2).kind == "thread"

    def test_single_worker_runs_without_threads(self):
        executor = ThreadExecutor(workers=1)
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert executor._pool is None

    def test_error_message_truncates_long_failure_lists(self):
        executor = ThreadExecutor(workers=4)
        try:
            with pytest.raises(ExecutorError) as excinfo:
                executor.map(_fail_on_odd, [2 * i + 1 for i in range(9)])
            assert "and 4 more" in str(excinfo.value)
            assert len(excinfo.value.failures) == 9
        finally:
            executor.close()


class TestProcessExecutor:
    def test_runs_in_other_processes(self):
        with ProcessExecutor(workers=2, initializer=_make_counter) as executor:
            results = executor.map(_count, list(range(8)))
        pids = {pid for pid, _, _ in results}
        assert os.getpid() not in pids
        assert len(pids) == 2

    def test_initializer_state_persists_per_worker(self):
        """Item i runs on worker i mod n, so each worker's private state
        sees exactly its own shard -- in shard order."""
        with ProcessExecutor(workers=2, initializer=_make_counter) as executor:
            results = executor.map(_count, list(range(6)))
        for index, (_, calls, item) in enumerate(results):
            assert item == index
            assert calls == index // 2 + 1

    def test_dead_worker_is_respawned_and_task_retried(self, tmp_path):
        with ProcessExecutor(workers=2, initializer=_make_counter) as executor:
            fn = _RetriedCrash(str(tmp_path))
            assert executor.map(fn, [0, 1, 2, 3]) == [0, 10, 20, 30]
            assert executor.respawns == 1

    def test_worker_death_exhausts_retries(self):
        with ProcessExecutor(workers=2, retries=1) as executor:
            with pytest.raises(ExecutorError, match="worker process died"):
                executor.map(_die, [0])
            # one respawn for the retry, one replacing the final casualty
            assert executor.respawns == 2

    def test_timeout_kills_and_reports(self):
        with ProcessExecutor(workers=2, timeout_s=0.3, retries=0) as executor:
            started = time.monotonic()
            with pytest.raises(ExecutorError, match="timed out after 0.3s"):
                executor.map(_sleep_forever, [0])
            assert time.monotonic() - started < 5.0

    def test_timeout_fires_even_while_siblings_stay_busy(self):
        with ProcessExecutor(workers=2, timeout_s=0.3, retries=0) as executor:
            with pytest.raises(ExecutorError) as excinfo:
                executor.map(_hang_on_zero, list(range(10)))
            assert [index for index, _, _ in excinfo.value.failures] == [0]

    def test_application_error_does_not_respawn(self):
        with ProcessExecutor(workers=2, initializer=_make_counter) as executor:
            with pytest.raises(ExecutorError, match="odd item"):
                executor.map(_count_fail_on_odd, list(range(4)))
            assert executor.respawns == 0
            # the workers stayed alive and keep serving
            assert [x for _, _, x in executor.map(_count, [4, 5])] == [4, 5]

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError):
            ProcessExecutor(workers=1, timeout_s=0.0)


class _RetriedCrash:
    """Picklable callable: worker 1's first task crashes it, retry succeeds."""

    def __init__(self, marker_dir):
        self.marker_dir = marker_dir

    def __call__(self, state, x):
        if x == 1:
            return _die_once(self.marker_dir, x) * 1 or x * 10
        return x * 10


def _hang_on_zero(x):
    if x == 0:
        time.sleep(3600)
    time.sleep(0.01)
    return x


def _count_fail_on_odd(state, x):
    if x % 2:
        raise ValueError(f"odd item {x}")
    return (os.getpid(), state.calls, x)

"""Tests for the batch-first query pipeline: planner, voting, consistency.

Covers the ``query_batch`` implementations of every oracle layer, the
cache-layer batch planner (dedup, trie hits, prefix collapse), the new
``QueryCache.longest_cached_prefix`` helper, the stored-word ``entries``
counter, and the nondeterminism-detection paths in both serial and batched
form.
"""

import pytest

from repro.adapter.mealy_sul import MealySUL
from repro.learn.cache import (
    CacheInconsistencyError,
    CachedMembershipOracle,
    QueryCache,
)
from repro.learn.nondeterminism import (
    MajorityVoteOracle,
    NondeterminismError,
    NondeterminismPolicy,
)
from repro.learn.teacher import CountingOracle, SULMembershipOracle, mq_suffix_batch


class TestLongestCachedPrefix:
    def test_full_match(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        cache = QueryCache()
        cache.insert((syn, ack), toy_machine.run((syn, ack)))
        prefix, outputs = cache.longest_cached_prefix((syn, ack))
        assert prefix == (syn, ack)
        assert outputs == toy_machine.run((syn, ack))

    def test_partial_match(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        cache = QueryCache()
        cache.insert((syn, ack), toy_machine.run((syn, ack)))
        prefix, outputs = cache.longest_cached_prefix((syn, ack, ack, syn))
        assert prefix == (syn, ack)
        assert outputs == toy_machine.run((syn, ack))

    def test_no_match(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        cache = QueryCache()
        cache.insert((syn,), toy_machine.run((syn,)))
        prefix, outputs = cache.longest_cached_prefix((ack, syn))
        assert prefix == ()
        assert outputs == ()


class TestEntriesCounter:
    def test_entries_count_words_not_nodes(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        cache = QueryCache()
        cache.insert((syn, ack, syn), toy_machine.run((syn, ack, syn)))
        # One stored word, three trie nodes.
        assert cache.entries == 1
        assert cache.nodes == 3

    def test_reinsert_does_not_double_count(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        cache = QueryCache()
        cache.insert((syn, ack), toy_machine.run((syn, ack)))
        cache.insert((syn, ack), toy_machine.run((syn, ack)))
        assert cache.entries == 1

    def test_prefix_insert_is_its_own_word(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        cache = QueryCache()
        cache.insert((syn, ack), toy_machine.run((syn, ack)))
        cache.insert((syn,), toy_machine.run((syn,)))
        assert cache.entries == 2
        assert cache.nodes == 2

    def test_clear_resets_both(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        cache = QueryCache()
        cache.insert((syn, ack), toy_machine.run((syn, ack)))
        cache.clear()
        assert cache.entries == 0
        assert cache.nodes == 0


class TestBatchPlanner:
    def _oracle(self, machine):
        sul = MealySUL(machine)
        return sul, CachedMembershipOracle(SULMembershipOracle(sul))

    def test_batch_matches_serial(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        words = [(syn,), (ack, ack), (syn, ack, syn)]
        _, oracle = self._oracle(toy_machine)
        assert oracle.query_batch(words) == [toy_machine.run(w) for w in words]

    def test_dedup_within_batch(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        sul, oracle = self._oracle(toy_machine)
        outputs = oracle.query_batch([(syn, ack), (syn, ack), (syn, ack)])
        assert outputs == [toy_machine.run((syn, ack))] * 3
        assert sul.stats.queries == 1
        assert oracle.batch_deduped == 2

    def test_prefix_collapse(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        sul, oracle = self._oracle(toy_machine)
        outputs = oracle.query_batch([(syn,), (syn, ack), (syn, ack, ack)])
        assert outputs == [
            toy_machine.run((syn,)),
            toy_machine.run((syn, ack)),
            toy_machine.run((syn, ack, ack)),
        ]
        # Only the maximal word touched the SUL.
        assert sul.stats.queries == 1
        assert oracle.prefix_collapsed == 2

    def test_collapse_can_be_disabled(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        sul = MealySUL(toy_machine)
        oracle = CachedMembershipOracle(
            SULMembershipOracle(sul), collapse_prefixes=False
        )
        oracle.query_batch([(syn,), (syn, ack)])
        assert sul.stats.queries == 2
        assert oracle.prefix_collapsed == 0

    def test_trie_hits_skip_the_sul(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        sul, oracle = self._oracle(toy_machine)
        oracle.query_batch([(syn, ack)])
        before = sul.stats.queries
        outputs = oracle.query_batch([(syn, ack), (syn,)])
        assert outputs == [toy_machine.run((syn, ack)), toy_machine.run((syn,))]
        assert sul.stats.queries == before
        assert oracle.hits >= 2

    def test_hit_rate_accounting(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        _, oracle = self._oracle(toy_machine)
        oracle.query_batch([(syn,), (syn, ack), (syn, ack)])
        # 1 executed (miss), 1 collapsed + 1 dup (hits).
        assert oracle.misses == 1
        assert oracle.hits == 2

    def test_counting_oracle_passthrough(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        counting = CountingOracle(SULMembershipOracle(MealySUL(toy_machine)))
        words = [(syn,), (syn, ack)]
        assert counting.query_batch(words) == [toy_machine.run(w) for w in words]
        assert counting.stats.queries == 2

    def test_mq_suffix_batch(self, toy_machine, ab_alphabet):
        syn, ack = ab_alphabet.symbols
        _, oracle = self._oracle(toy_machine)
        answers = mq_suffix_batch(oracle, [((syn,), (ack,)), ((), (syn, ack))])
        assert answers[0] == toy_machine.run((syn, ack))[1:]
        assert answers[1] == toy_machine.run((syn, ack))


class TestNondeterminismSerialAndBatched:
    def test_cache_conflict_detected_serial(
        self, toy_machine, ab_alphabet, out_symbols, make_volatile_sul
    ):
        syn, ack = ab_alphabet.symbols
        synack, nil = out_symbols
        volatile = make_volatile_sul(toy_machine, flip_symbol=syn, alt_output=nil)
        oracle = CachedMembershipOracle(SULMembershipOracle(volatile))
        oracle.query((syn,))
        with pytest.raises(CacheInconsistencyError) as excinfo:
            oracle.query((syn, ack))
        assert excinfo.value.cached != excinfo.value.fresh

    def test_cache_conflict_detected_batched(
        self, toy_machine, ab_alphabet, out_symbols, make_volatile_sul
    ):
        syn, ack = ab_alphabet.symbols
        synack, nil = out_symbols
        volatile = make_volatile_sul(toy_machine, flip_symbol=syn, alt_output=nil)
        oracle = CachedMembershipOracle(SULMembershipOracle(volatile))
        oracle.query_batch([(syn,)])
        with pytest.raises(CacheInconsistencyError):
            oracle.query_batch([(syn, ack), (ack,)])

    def test_majority_vote_resolves_flaky_serial(
        self, toy_machine, ab_alphabet, out_symbols, make_flaky_sul
    ):
        syn, ack = ab_alphabet.symbols
        synack, _ = out_symbols
        flaky = make_flaky_sul(toy_machine, flip_symbol=ack, alt_output=synack, period=3)
        oracle = MajorityVoteOracle(
            SULMembershipOracle(flaky),
            NondeterminismPolicy(min_repeats=3, max_repeats=10, certainty=0.6),
        )
        assert oracle.query((syn, ack)) == toy_machine.run((syn, ack))
        assert oracle.nondeterministic_queries == 0

    def test_majority_vote_resolves_flaky_batched(
        self, toy_machine, ab_alphabet, out_symbols, make_flaky_sul
    ):
        syn, ack = ab_alphabet.symbols
        synack, _ = out_symbols
        flaky = make_flaky_sul(toy_machine, flip_symbol=ack, alt_output=synack, period=3)
        oracle = MajorityVoteOracle(
            SULMembershipOracle(flaky),
            NondeterminismPolicy(min_repeats=3, max_repeats=10, certainty=0.6),
        )
        # One flaky word alongside deterministic ones: the batch resolves
        # the majority answer for all of them.
        answers = oracle.query_batch([(syn, ack), (syn,), (ack,)])
        assert answers == [
            toy_machine.run((syn, ack)),
            toy_machine.run((syn,)),
            toy_machine.run((ack,)),
        ]
        assert oracle.nondeterministic_queries == 0

    def test_majority_vote_raises_batched(
        self, toy_machine, ab_alphabet, out_symbols, make_flaky_sul
    ):
        syn, ack = ab_alphabet.symbols
        synack, _ = out_symbols
        flaky = make_flaky_sul(toy_machine, flip_symbol=ack, alt_output=synack, period=2)
        oracle = MajorityVoteOracle(
            SULMembershipOracle(flaky),
            NondeterminismPolicy(min_repeats=3, max_repeats=6, certainty=0.95),
        )
        with pytest.raises(NondeterminismError) as excinfo:
            oracle.query_batch([(syn,), (syn, ack)])
        assert excinfo.value.frequency_of_most_common() <= 0.95
        assert oracle.nondeterministic_queries == 1

    def test_batched_matches_serial_for_deterministic_sul(
        self, toy_machine, ab_alphabet
    ):
        syn, ack = ab_alphabet.symbols
        words = [(syn,), (ack, syn), (syn, ack, syn)]
        serial = MajorityVoteOracle(
            SULMembershipOracle(MealySUL(toy_machine)),
            NondeterminismPolicy(min_repeats=2, max_repeats=4),
        )
        batched = MajorityVoteOracle(
            SULMembershipOracle(MealySUL(toy_machine)),
            NondeterminismPolicy(min_repeats=2, max_repeats=4),
        )
        assert batched.query_batch(words) == [serial.query(w) for w in words]

"""Unit tests for the QUIC-Tracker-like reference client."""

import pytest

from repro.netsim import SimulatedNetwork
from repro.quic.frames import (
    AckFrame,
    CryptoFrame,
    HandshakeDoneFrame,
    MaxDataFrame,
    MaxStreamDataFrame,
    StreamFrame,
)
from repro.quic.impls.quiche import quiche_server
from repro.quic.impls.tracker import TrackerClient, TrackerConfig
from repro.quic.packet import PacketType


@pytest.fixture
def stack():
    network = SimulatedNetwork()
    server = quiche_server(network)
    client = TrackerClient(network, server.endpoint.address)
    return network, server, client


class TestConcretization:
    def test_initial_crypto_contains_client_hello(self, stack):
        _, _, client = stack
        _, frames = client.build_packet("INITIAL", ("CRYPTO",))
        crypto = next(f for f in frames if isinstance(f, CryptoFrame))
        assert crypto.data.startswith(b"CH01")

    def test_stream_frames_advance_offsets(self, stack):
        _, _, client = stack
        _, frames1 = client.build_packet("SHORT", ("STREAM",))
        _, frames2 = client.build_packet("SHORT", ("STREAM",))
        stream1 = next(f for f in frames1 if isinstance(f, StreamFrame))
        stream2 = next(f for f in frames2 if isinstance(f, StreamFrame))
        assert stream2.offset == stream1.offset + len(stream1.data)

    def test_max_stream_data_monotonically_increases(self, stack):
        _, _, client = stack
        values = []
        for _ in range(3):
            _, frames = client.build_packet("SHORT", ("MAX_STREAM_DATA",))
            frame = next(f for f in frames if isinstance(f, MaxStreamDataFrame))
            values.append(frame.maximum_stream_data)
        assert values == sorted(values)
        assert len(set(values)) == 3

    def test_packet_numbers_increase_per_space(self, stack):
        _, _, client = stack
        first, _ = client.build_packet("INITIAL", ("CRYPTO",))
        second, _ = client.build_packet("INITIAL", ("CRYPTO",))
        assert second.packet_number == first.packet_number + 1

    def test_unknown_frame_kind_rejected(self, stack):
        _, _, client = stack
        with pytest.raises(ValueError):
            client.build_packet("SHORT", ("RESET_STREAM",))

    def test_ack_fallback_when_nothing_received(self, stack):
        _, _, client = stack
        _, frames = client.build_packet("SHORT", ("ACK",))
        ack = next(f for f in frames if isinstance(f, AckFrame))
        assert ack.largest_acknowledged == 0


class TestFallbackKeys:
    def test_short_before_handshake_uses_fallback(self, stack):
        _, server, client = stack
        header, _ = client.build_packet("SHORT", ("ACK", "STREAM"))
        # The server cannot open this packet with real application keys.
        assert client.application_keys is None
        assert header.payload  # sealed with throwaway keys

    def test_real_keys_after_flight(self, stack):
        _, _, client = stack
        client.exchange("INITIAL", ("CRYPTO",))
        assert client.application_keys is not None
        assert client.handshake_keys is not None
        assert client.server_params is not None


class TestReset:
    def test_reset_renews_connection_identity(self, stack):
        _, _, client = stack
        client.exchange("INITIAL", ("CRYPTO",))
        old_dcid = client.dcid
        old_random = client.client_random
        client.reset()
        assert client.dcid != old_dcid
        assert client.client_random != old_random
        assert client.application_keys is None
        assert client.retry_token is None
        assert client.request_offset == 0

    def test_reset_closes_extra_endpoints(self):
        network = SimulatedNetwork()
        server = quiche_server(network, retry_enabled=True)
        client = TrackerClient(
            network,
            server.endpoint.address,
            config=TrackerConfig(retry_port_bug=True, reset_pn_spaces_on_retry=False),
        )
        client.exchange("INITIAL", ("CRYPTO",))
        assert client._extra_endpoints
        client.reset()
        assert not client._extra_endpoints
        assert client._active_endpoint is client._main_endpoint


class TestPacketParams:
    def test_params_extract_numeric_fields(self, stack):
        from repro.quic.impls.tracker import ConcretePacket
        from repro.quic.packet import PacketHeader

        packet = ConcretePacket(
            header=PacketHeader(
                packet_type=PacketType.SHORT,
                destination_cid=b"\x00" * 8,
                packet_number=7,
            ),
            frames=(
                StreamFrame(stream_id=0, offset=100, data=b"xy"),
                MaxDataFrame(maximum_data=5000),
                HandshakeDoneFrame(),
            ),
        )
        params = TrackerClient.packet_params(packet)
        assert params == {
            "pn": 7,
            "stream_offset": 100,
            "stream_len": 2,
            "max_data": 5000,
        }

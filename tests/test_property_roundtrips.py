"""Cross-cutting property-based tests on codecs and test-suite guarantees."""

from hypothesis import given, settings, strategies as st

from repro.core.alphabet import (
    Alphabet,
    QUICOutput,
    QUICSymbol,
    QUIC_FRAME_TYPES,
    TCPSymbol,
    parse_quic_output,
)
from repro.core.mealy import MealyMachine
from repro.quic.transport_params import TransportParameters

SYN = TCPSymbol.make(["SYN"])
ACK = TCPSymbol.make(["ACK"])
OUTS = [TCPSymbol.make(["SYN", "ACK"]), TCPSymbol(label="NIL"), TCPSymbol(label="RST(?,?,0)")]


@given(
    max_idle=st.integers(0, 2**20),
    max_data=st.integers(0, 2**30),
    msd_local=st.integers(0, 2**20),
    msd_remote=st.integers(0, 2**20),
    streams=st.integers(0, 2**16),
    odcid=st.binary(max_size=20),
)
@settings(max_examples=150, deadline=None)
def test_transport_params_roundtrip(
    max_idle, max_data, msd_local, msd_remote, streams, odcid
):
    params = TransportParameters(
        max_idle_timeout=max_idle,
        initial_max_data=max_data,
        initial_max_stream_data_bidi_local=msd_local,
        initial_max_stream_data_bidi_remote=msd_remote,
        initial_max_streams_bidi=streams,
        original_dcid=odcid,
    )
    decoded = TransportParameters.decode(params.encode())
    assert decoded.max_idle_timeout == max_idle
    assert decoded.initial_max_data == max_data
    assert decoded.initial_max_stream_data_bidi_local == msd_local
    assert decoded.initial_max_stream_data_bidi_remote == msd_remote
    assert decoded.initial_max_streams_bidi == streams
    assert decoded.original_dcid == odcid


_PTYPES = ["INITIAL", "HANDSHAKE", "SHORT"]


@given(
    packets=st.lists(
        st.tuples(
            st.sampled_from(_PTYPES),
            st.sets(st.sampled_from(QUIC_FRAME_TYPES), max_size=4),
        ),
        max_size=5,
    )
)
@settings(max_examples=150, deadline=None)
def test_quic_output_parse_render_roundtrip(packets):
    output = QUICOutput.make(
        QUICSymbol.make(ptype, frames) for ptype, frames in packets
    )
    assert parse_quic_output(str(output)) == output


@st.composite
def machine_with_mutation(draw):
    num_states = draw(st.integers(min_value=2, max_value=5))
    alphabet = Alphabet.of([SYN, ACK])
    table = {}
    for state in range(num_states):
        for symbol in (SYN, ACK):
            target = draw(st.integers(0, num_states - 1))
            output = draw(st.sampled_from(OUTS))
            table[(state, symbol)] = (target, output)
    machine = MealyMachine(0, alphabet, table, "random")
    # Mutate the output of one transition reachable in the trimmed machine.
    source = draw(st.sampled_from(list(machine.states)))
    symbol = draw(st.sampled_from([SYN, ACK]))
    target, old_output = table[(source, symbol)]
    new_output = draw(st.sampled_from([o for o in OUTS if o != old_output]))
    mutated = dict(table)
    mutated[(source, symbol)] = (target, new_output)
    mutant = MealyMachine(0, alphabet, mutated, "mutant")
    return machine, mutant


@given(machine_with_mutation())
@settings(max_examples=60, deadline=None)
def test_w_method_suite_kills_output_mutants(pair):
    """The W-method guarantee: any same-size machine with different
    behaviour is caught by the suite (output mutations always change
    behaviour at the mutated, reachable transition)."""
    machine, mutant = pair
    suite = machine.w_method_suite(extra_states=0)
    killed = any(machine.run(word) != mutant.run(word) for word in suite)
    assert killed


@given(machine_with_mutation())
@settings(max_examples=40, deadline=None)
def test_dot_export_well_formed(pair):
    machine, _ = pair
    dot = machine.to_dot()
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    assert dot.count("->") == machine.num_transitions + 1  # + start edge

"""Unit and property tests for the TCP segment codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tcp.segment import (
    SegmentError,
    TCPSegment,
    bits_to_flags,
    flags_to_bits,
)


class TestFlags:
    def test_roundtrip_bits(self):
        bits = flags_to_bits(["SYN", "ACK"])
        assert bits_to_flags(bits) == {"SYN", "ACK"}

    def test_unknown_flag(self):
        with pytest.raises(SegmentError):
            flags_to_bits(["NOPE"])

    def test_flag_string_order(self):
        segment = TCPSegment(1, 2, 0, 0, flags=frozenset({"FIN", "ACK"}))
        assert segment.flag_string() == "ACK+FIN"

    def test_empty_flag_string(self):
        assert TCPSegment(1, 2, 0, 0).flag_string() == "NIL"


class TestValidation:
    def test_port_range(self):
        with pytest.raises(SegmentError):
            TCPSegment(70000, 1, 0, 0)

    def test_seq_range(self):
        with pytest.raises(SegmentError):
            TCPSegment(1, 1, 2**32, 0)

    def test_has_flags_exact(self):
        segment = TCPSegment(1, 2, 0, 0, flags=frozenset({"SYN", "ACK"}))
        assert segment.has_flags("ACK", "SYN")
        assert not segment.has_flags("SYN")


class TestCodec:
    def test_roundtrip_basic(self):
        segment = TCPSegment(
            source_port=40965,
            destination_port=44344,
            seq_number=48108,
            ack_number=0,
            flags=frozenset({"SYN"}),
            window=8192,
            payload=b"hello",
        )
        wire = segment.encode("client", "server")
        decoded = TCPSegment.decode(wire, "client", "server")
        assert decoded == segment

    def test_checksum_detects_corruption(self):
        segment = TCPSegment(1, 2, 3, 4, flags=frozenset({"ACK"}))
        wire = bytearray(segment.encode("a", "b"))
        wire[4] ^= 0xFF  # flip a byte of the sequence number
        with pytest.raises(SegmentError):
            TCPSegment.decode(bytes(wire), "a", "b")

    def test_checksum_binds_hosts(self):
        segment = TCPSegment(1, 2, 3, 4)
        wire = segment.encode("hostA", "hostB")
        with pytest.raises(SegmentError):
            TCPSegment.decode(wire, "hostX", "hostB")

    def test_truncated_rejected(self):
        with pytest.raises(SegmentError):
            TCPSegment.decode(b"\x00" * 10)

    def test_decode_without_verification(self):
        segment = TCPSegment(1, 2, 3, 4)
        wire = segment.encode("a", "b")
        decoded = TCPSegment.decode(wire, "x", "y", verify_checksum=False)
        assert decoded.seq_number == 3


@given(
    source_port=st.integers(0, 0xFFFF),
    destination_port=st.integers(0, 0xFFFF),
    seq=st.integers(0, 2**32 - 1),
    ack=st.integers(0, 2**32 - 1),
    window=st.integers(0, 0xFFFF),
    payload=st.binary(max_size=64),
    flags=st.sets(st.sampled_from(["SYN", "ACK", "FIN", "RST", "PSH", "URG"])),
)
@settings(max_examples=200, deadline=None)
def test_segment_roundtrip_property(
    source_port, destination_port, seq, ack, window, payload, flags
):
    segment = TCPSegment(
        source_port=source_port,
        destination_port=destination_port,
        seq_number=seq,
        ack_number=ack,
        flags=frozenset(flags),
        window=window,
        payload=payload,
    )
    decoded = TCPSegment.decode(segment.encode("c", "s"), "c", "s")
    assert decoded == segment

"""Seeded randomized round-trip stress tests for the wire codecs.

Encode -> decode identity over hundreds of generated cases per codec --
QUIC varints (:mod:`repro.quic.varint`), the static-table HPACK codec
(:mod:`repro.http2.hpack`) and the HTTP/2 frame codec
(:mod:`repro.http2.frames`) -- including every encoding-boundary value
and byte-stream reassembly through :class:`~repro.http2.frames
.FrameDecoder` under randomly chunked feeds.  All randomness is seeded,
so a failure reproduces deterministically.
"""

import random

import pytest

from repro.http2.frames import (
    Frame,
    FrameDecoder,
    FrameType,
    data_frame,
    goaway_frame,
    headers_frame,
    ping_frame,
    rst_stream_frame,
    settings_frame,
    window_update_frame,
)
from repro.http2.hpack import (
    STATIC_TABLE,
    HPACKDecoder,
    HPACKEncoder,
    HPACKError,
    decode_integer,
    decode_string,
    encode_integer,
    encode_string,
)
from repro.quic.varint import (
    VARINT_MAX,
    Buffer,
    VarintError,
    decode_varint,
    encode_varint,
    varint_length,
)

#: Values at and around every varint length boundary (RFC 9000 section 16).
VARINT_BOUNDARIES = (
    0, 1, 62, 63, 64,                      # 1 <-> 2 byte boundary
    (1 << 14) - 1, 1 << 14,                # 2 <-> 4 byte boundary
    (1 << 30) - 1, 1 << 30,                # 4 <-> 8 byte boundary
    VARINT_MAX - 1, VARINT_MAX,
)


class TestVarintRoundTrip:
    def test_boundary_values(self):
        for value in VARINT_BOUNDARIES:
            encoded = encode_varint(value)
            assert len(encoded) == varint_length(value)
            decoded, consumed = decode_varint(encoded)
            assert decoded == value
            assert consumed == len(encoded)

    def test_500_random_values_round_trip(self):
        rng = random.Random(160)
        for _ in range(500):
            value = rng.randrange(0, VARINT_MAX + 1)
            decoded, consumed = decode_varint(encode_varint(value))
            assert decoded == value

    def test_random_concatenations_decode_in_sequence(self):
        rng = random.Random(161)
        for _ in range(50):
            values = [
                rng.randrange(0, VARINT_MAX + 1) for _ in range(rng.randint(1, 20))
            ]
            blob = b"".join(encode_varint(v) for v in values)
            offset, decoded = 0, []
            while offset < len(blob):
                value, offset = decode_varint(blob, offset)
                decoded.append(value)
            assert decoded == values

    def test_out_of_range_rejected(self):
        for value in (-1, VARINT_MAX + 1):
            with pytest.raises(VarintError):
                encode_varint(value)

    def test_truncation_rejected_at_every_cut(self):
        for value in VARINT_BOUNDARIES:
            encoded = encode_varint(value)
            for cut in range(len(encoded)):
                with pytest.raises(VarintError):
                    decode_varint(encoded[:cut])

    def test_buffer_mixed_fields_round_trip(self):
        rng = random.Random(162)
        for _ in range(100):
            fields = []
            buffer = Buffer()
            for _ in range(rng.randint(1, 10)):
                kind = rng.choice(("u8", "u32", "varint", "vbytes"))
                if kind == "u8":
                    value = rng.randrange(256)
                    buffer.push_uint8(value)
                elif kind == "u32":
                    value = rng.randrange(1 << 32)
                    buffer.push_uint(value, 4)
                elif kind == "varint":
                    value = rng.randrange(0, VARINT_MAX + 1)
                    buffer.push_varint(value)
                else:
                    value = rng.randbytes(rng.randint(0, 40))
                    buffer.push_varint_bytes(value)
                fields.append((kind, value))
            reader = Buffer(buffer.getvalue())
            for kind, value in fields:
                if kind == "u8":
                    assert reader.pull_uint8() == value
                elif kind == "u32":
                    assert reader.pull_uint(4) == value
                elif kind == "varint":
                    assert reader.pull_varint() == value
                else:
                    assert reader.pull_varint_bytes() == value
            assert reader.eof


def random_headers(rng: random.Random) -> list[tuple[str, str]]:
    """A header list mixing full-table, name-only and literal fields."""
    headers = []
    for _ in range(rng.randint(1, 12)):
        shape = rng.random()
        if shape < 0.4:  # full static-table match
            headers.append(rng.choice(STATIC_TABLE))
        elif shape < 0.7:  # static name, random value
            name = rng.choice(STATIC_TABLE)[0]
            value = "".join(
                rng.choice("abcdefghij0123456789-_/ ") for _ in range(rng.randint(0, 30))
            )
            headers.append((name, value))
        else:  # fully literal name and value
            name = "x-" + "".join(
                rng.choice("abcdefgh") for _ in range(rng.randint(1, 12))
            )
            value = "".join(
                rng.choice("abcdefgh é€") for _ in range(rng.randint(0, 20))
            )
            headers.append((name, value))
    return headers


class TestHPACKRoundTrip:
    def test_500_random_header_lists_round_trip(self):
        rng = random.Random(163)
        encoder, decoder = HPACKEncoder(), HPACKDecoder()
        for _ in range(500):
            headers = random_headers(rng)
            assert decoder.decode(encoder.encode(headers)) == headers

    def test_every_static_table_entry_round_trips(self):
        encoder, decoder = HPACKEncoder(), HPACKDecoder()
        headers = list(STATIC_TABLE)
        assert decoder.decode(encoder.encode(headers)) == headers

    def test_integer_codec_round_trips_all_prefixes(self):
        rng = random.Random(164)
        for prefix_bits in range(1, 9):
            boundary = (1 << prefix_bits) - 1
            values = {0, 1, boundary - 1, boundary, boundary + 1, 127, 128, 16_383}
            values.update(rng.randrange(0, 1 << 24) for _ in range(80))
            for value in sorted(values):
                encoded = bytes(encode_integer(value, prefix_bits))
                decoded, consumed = decode_integer(encoded, 0, prefix_bits)
                assert decoded == value
                assert consumed == len(encoded)

    def test_string_codec_round_trips_unicode(self):
        rng = random.Random(165)
        for _ in range(200):
            text = "".join(
                rng.choice("abc éß€中") for _ in range(rng.randint(0, 50))
            )
            decoded, consumed = decode_string(bytes(encode_string(text)), 0)
            assert decoded == text

    def test_truncated_blocks_rejected(self):
        encoder = HPACKEncoder()
        block = encoder.encode([("x-custom", "value-that-is-long-enough")])
        decoder = HPACKDecoder()
        for cut in range(1, len(block)):
            with pytest.raises(HPACKError):
                decoder.decode(block[:cut])


def random_frame(rng: random.Random) -> Frame:
    """One valid frame of a random type with random contents."""
    kind = rng.choice(
        ("settings", "settings-ack", "headers", "data", "rst", "goaway", "ping",
         "window", "raw")
    )
    sid = rng.randint(1, 1 << 20) * 2 + 1
    if kind == "settings":
        return settings_frame(
            {rng.randint(1, 6): rng.randrange(1 << 31) for _ in range(rng.randint(0, 4))}
        )
    if kind == "settings-ack":
        return settings_frame(ack=True)
    if kind == "headers":
        return headers_frame(
            sid,
            rng.randbytes(rng.randint(0, 64)),
            end_stream=rng.random() < 0.5,
            end_headers=rng.random() < 0.9,
        )
    if kind == "data":
        return data_frame(
            sid, rng.randbytes(rng.randint(0, 256)), end_stream=rng.random() < 0.5
        )
    if kind == "rst":
        return rst_stream_frame(sid, rng.randint(0, 9))
    if kind == "goaway":
        return goaway_frame(sid, rng.randint(0, 9), rng.randbytes(rng.randint(0, 16)))
    if kind == "ping":
        return ping_frame(rng.randbytes(8), ack=rng.random() < 0.5)
    if kind == "window":
        return window_update_frame(sid, rng.randint(1, 2**31 - 1))
    return Frame(
        frame_type=rng.randint(0, 9),
        flags=rng.randrange(256),
        stream_id=rng.randrange(2**31),
        payload=rng.randbytes(rng.randint(0, 128)),
    )


class TestFrameRoundTrip:
    def test_500_random_frames_round_trip(self):
        rng = random.Random(166)
        for _ in range(500):
            frame = random_frame(rng)
            decoded, consumed = Frame.decode(frame.encode())
            assert consumed == len(frame.encode())
            assert decoded == frame

    def test_decode_at_offset(self):
        rng = random.Random(167)
        first, second = random_frame(rng), random_frame(rng)
        blob = first.encode() + second.encode()
        decoded, consumed = Frame.decode(blob, offset=len(first.encode()))
        assert decoded == second

    def test_incomplete_frames_wait_for_more(self):
        frame = data_frame(1, b"payload")
        encoded = frame.encode()
        for cut in range(len(encoded)):
            decoded, consumed = Frame.decode(encoded[:cut])
            assert decoded is None
            assert consumed == 0

    def test_chunked_decoder_feeds_reassemble_exactly(self):
        """FrameDecoder must reproduce the frame sequence regardless of how
        the byte stream is sliced into feed() calls."""
        rng = random.Random(168)
        for _ in range(60):
            frames = [random_frame(rng) for _ in range(rng.randint(1, 12))]
            blob = b"".join(frame.encode() for frame in frames)
            decoder = FrameDecoder()
            received = []
            offset = 0
            while offset < len(blob):
                size = rng.randint(1, 40)
                received.extend(decoder.feed(blob[offset : offset + size]))
                offset += size
            assert received == frames
            assert decoder.buffered == 0

    def test_single_byte_feeds(self):
        frames = [settings_frame(), ping_frame(), data_frame(3, b"x", end_stream=True)]
        blob = b"".join(frame.encode() for frame in frames)
        decoder = FrameDecoder()
        received = []
        for index in range(len(blob)):
            received.extend(decoder.feed(blob[index : index + 1]))
        assert received == frames

    def test_decoder_retains_partial_tail(self):
        decoder = FrameDecoder()
        frame = headers_frame(5, b"block")
        encoded = frame.encode()
        assert decoder.feed(encoded[:-2]) == []
        assert decoder.buffered == len(encoded) - 2
        assert decoder.feed(encoded[-2:]) == [frame]

    def test_flag_names_match_type(self):
        rng = random.Random(169)
        for _ in range(100):
            frame = random_frame(rng)
            names = frame.flag_names()
            assert len(names) == len(set(names))
            if frame.frame_type == FrameType.RST_STREAM:
                assert names == ()

"""Tests for the layered-adapter API: transports, composition, delegation.

The transports are exercised against a tiny echo app so every behavior
(ARQ recovery, in-order delivery, stream independence, migration, 0-RTT)
is pinned below the protocol layers that ride them.
"""

import pytest

from repro.adapter.layered import (
    AppLayer,
    LayeredSUL,
    QuicStreamTransport,
    ReliableByteTransport,
    StreamEvent,
    Transport,
    TransportError,
    compose,
)
from repro.core.alphabet import Alphabet, TCPSymbol
from repro.netsim import LinkConfig


def _echo_server(transport: Transport) -> None:
    """Attach a handler echoing each data event back with an ``ok:`` prefix."""

    def handler(event: StreamEvent):
        if event.kind != "data":
            return [
                StreamEvent(
                    stream_id=event.stream_id,
                    kind="reset",
                    error_code=event.error_code,
                )
            ]
        return [
            StreamEvent(
                stream_id=event.stream_id,
                kind="data",
                data=b"ok:" + event.data,
                fin=event.fin,
            )
        ]

    transport.set_server(handler)


class TestReliableByteTransport:
    def test_roundtrip_on_perfect_link(self):
        transport = ReliableByteTransport(seed=1)
        _echo_server(transport)
        transport.reset()
        transport.send(0, b"hello")
        events = transport.exchange()
        assert events == [StreamEvent(0, "data", b"ok:hello")]
        transport.close()

    def test_single_stream_only(self):
        transport = ReliableByteTransport(seed=1)
        with pytest.raises(TransportError):
            transport.send(4, b"x")
        with pytest.raises(TransportError):
            transport.send(0, b"x", fin=True)
        with pytest.raises(TransportError):
            transport.reset_stream(0)
        transport.close()

    def test_head_of_line_blocking_then_recovery(self):
        """A lost first segment stalls the delivered second one."""
        transport = ReliableByteTransport(seed=1)
        _echo_server(transport)
        transport.reset()
        # Two segments in one flight; the first datagram is dropped.
        transport.send(0, b"first")
        transport.send(0, b"second")
        transport.network.drop_next(1)
        # In-order delivery: nothing can be served past the gap.
        assert transport.exchange(max_rounds=1) == []
        # The next exchange retransmits everything unacked and recovers;
        # the byte stream is delivered contiguously, as one reassembled
        # chunk (both segments served together).
        events = transport.exchange()
        assert events == [StreamEvent(0, "data", b"ok:firstsecond")]
        transport.close()

    def test_recovery_under_random_loss(self):
        transport = ReliableByteTransport(
            seed=3, link=LinkConfig(loss_rate=0.3)
        )
        _echo_server(transport)
        for _ in range(10):
            transport.reset()
            transport.send(0, b"payload")
            collected = b""
            for _ in range(20):
                for event in transport.exchange():
                    collected += event.data
                if collected:
                    break
            assert collected == b"ok:payload"
        transport.close()

    def test_server_cannot_send_resets(self):
        transport = ReliableByteTransport(seed=1)
        transport.set_server(
            lambda event: [StreamEvent(0, "reset", error_code=1)]
        )
        transport.reset()
        transport.send(0, b"x")
        with pytest.raises(TransportError):
            transport.exchange()
        transport.close()


class TestQuicStreamTransport:
    def test_roundtrip_with_fin(self):
        transport = QuicStreamTransport(seed=2)
        _echo_server(transport)
        transport.reset()
        transport.send(0, b"req", fin=True)
        events = transport.exchange()
        assert events == [StreamEvent(0, "data", b"ok:req", fin=True)]
        transport.close()

    def test_streams_deliver_independently_under_loss(self):
        """Loss on one stream's packet never stalls another stream."""
        transport = QuicStreamTransport(seed=2)
        _echo_server(transport)
        transport.reset()
        transport.send(0, b"alpha", fin=True)
        transport.send(4, b"beta", fin=True)
        transport.network.drop_next(1)  # kills stream 0's packet
        first = transport.exchange()
        assert [e.stream_id for e in first] == [4]
        assert first[0].data == b"ok:beta"
        # Stream 0 recovers by retransmission on the next exchange.
        second = transport.exchange()
        assert [e.stream_id for e in second] == [0]
        assert second[0].data == b"ok:alpha"
        transport.close()

    def test_reset_stream_travels_both_ways(self):
        transport = QuicStreamTransport(seed=2)
        _echo_server(transport)  # echoes resets back
        transport.reset()
        transport.reset_stream(0, error_code=7)
        events = transport.exchange()
        assert events == [StreamEvent(0, "reset", error_code=7)]
        transport.close()

    def test_migration_keeps_the_connection(self):
        transport = QuicStreamTransport(seed=2)
        _echo_server(transport)
        transport.reset()
        transport.send(0, b"before", fin=True)
        assert transport.exchange()[0].data == b"ok:before"
        old_port = transport._endpoint.address[1]
        transport.migrate()
        assert transport._endpoint.address[1] != old_port
        assert transport.stats["migrations"] == 1
        transport.send(4, b"after", fin=True)
        events = transport.exchange()
        assert events[0].data == b"ok:after"
        # No new handshake happened for the migrated traffic.
        assert transport.stats["handshake_rounds"] == 1
        transport.close()

    def test_resumption_skips_the_handshake_round(self):
        transport = QuicStreamTransport(seed=2, resumption=True)
        _echo_server(transport)
        transport.reset()  # first connection: no ticket yet, full handshake
        transport.send(0, b"one", fin=True)
        assert transport.exchange()[0].data == b"ok:one"
        first_rounds = transport.last_connection_rounds
        transport.reset()  # second connection: ticket-armed 0-RTT
        transport.send(0, b"two", fin=True)
        assert transport.exchange()[0].data == b"ok:two"
        assert transport.last_connection_rounds < first_rounds
        assert transport.stats["handshake_rounds"] == 1
        transport.close()

    def test_unauthenticated_stray_packet_dropped(self):
        """Without a hello or valid ticket the server admits nothing."""
        transport = QuicStreamTransport(seed=2)
        _echo_server(transport)
        transport.reset()
        # Forge a fresh connection id without handshaking it.
        transport._conn.cid = b"\x00" * 8
        transport._conn.handshaken = True
        transport.send(0, b"stray", fin=True)
        assert transport.exchange() == []
        transport.close()

    def test_feature_flags(self):
        assert QuicStreamTransport.independent_streams
        assert QuicStreamTransport.supports_migration
        assert QuicStreamTransport.supports_resumption
        assert not ReliableByteTransport.independent_streams
        assert not ReliableByteTransport.supports_migration


# ---------------------------------------------------------------------------
# Composition
# ---------------------------------------------------------------------------

class _ProbeApp(AppLayer):
    """Minimal app recording what the composition machinery hands it."""

    name = "probe"

    def __init__(self, transport: Transport, seed: int = 0) -> None:
        self.alphabet = Alphabet.of([TCPSymbol.make(("SYN",))])
        self.transport = transport
        self.seed = seed
        self.resets = 0

    def reset(self) -> None:
        self.resets += 1

    def step(self, symbol):
        return symbol, {}, {}


def _probe_app(transport: Transport, seed: int = 0) -> _ProbeApp:
    return _ProbeApp(transport, seed=seed)


class TestCompose:
    def test_params_split_by_signature(self):
        factory = compose(QuicStreamTransport, _probe_app, name="probe")
        sul = factory(seed=5, resumption=True)
        assert isinstance(sul, LayeredSUL)
        assert sul.transport.resumption  # claimed by the transport
        assert sul.app.seed == 5  # `seed` accepted by both layers
        sul.close()

    def test_unclaimed_param_raises(self):
        factory = compose(QuicStreamTransport, _probe_app, name="probe")
        with pytest.raises(TypeError, match="no_such_option"):
            factory(no_such_option=1)

    def test_attribute_delegation_to_app(self):
        sul = compose(ReliableByteTransport, _probe_app, name="probe")()
        assert sul.resets == 0  # forwarded to the app layer
        sul.reset()
        assert sul.resets == 1
        with pytest.raises(AttributeError):
            sul.nonexistent_attribute
        sul.close()

    def test_sul_name_comes_from_compose(self):
        sul = compose(ReliableByteTransport, _probe_app, name="probe-x")()
        assert sul.name == "probe-x"
        sul.close()

"""End-to-end integration: learn real protocol substrates through adapters.

These are the fast variants of the benchmark experiments; the full paper
-scale runs (all issues, both QUIC models) live in benchmarks/.
"""

import pytest

from repro.adapter.tcp_adapter import TCPAdapterSUL
from repro.core.alphabet import parse_quic_symbol, parse_tcp_symbol
from repro.experiments import learn_quic, learn_tcp_full, synthesize_handshake_registers
from repro.experiments.tcp_experiments import learn_tcp_handshake
from repro.learn.nondeterminism import NondeterminismError


class TestTCPIntegration:
    def test_full_tcp_learns_paper_model(self):
        experiment = learn_tcp_full()
        assert experiment.model.num_states == 6
        assert experiment.model.num_transitions == 42

    def test_learned_model_matches_sul_on_fresh_words(self):
        experiment = learn_tcp_full()
        model = experiment.model
        sul = TCPAdapterSUL(seed=99)  # fresh, differently seeded SUL
        import random

        rng = random.Random(42)
        symbols = list(model.input_alphabet)
        for _ in range(30):
            word = tuple(rng.choice(symbols) for _ in range(rng.randint(1, 8)))
            assert sul.query(word) == model.run(word)

    def test_learning_is_seed_independent(self):
        a = learn_tcp_full(seed=3).model
        b = learn_tcp_full(seed=77).model
        from repro.analysis.equivalence import equivalent

        assert equivalent(a, b)

    def test_handshake_register_synthesis_recovers_sn_plus_one(self):
        experiment = learn_tcp_handshake()
        result = synthesize_handshake_registers(experiment)
        assert result is not None
        # Predict a fresh handshake: response an must be input sn + 1.
        from repro.core.extended import ConcreteStep

        syn = parse_tcp_symbol("SYN(?,?,0)")
        synack = parse_tcp_symbol("ACK+SYN(?,?,0)")
        step = ConcreteStep(syn, synack, {"sn": 0, "an": 0}, {"an": 1})
        assert result.machine.consistent_with([step])


class TestQUICIntegration:
    def test_quiche_learns_paper_model(self):
        experiment = learn_quic("quiche")
        assert experiment.model.num_states == 8
        assert experiment.model.num_transitions == 56

    def test_quiche_model_is_minimal_and_deterministic(self):
        experiment = learn_quic("quiche")
        model = experiment.model
        assert model.minimize().num_states == model.num_states

    def test_learned_model_predicts_fresh_sul(self):
        experiment = learn_quic("quiche")
        model = experiment.model
        from repro.experiments import make_quic_sul

        sul = make_quic_sul("quiche", seed=1234)
        ch = parse_quic_symbol("INITIAL(?,?)[CRYPTO]")
        hc = parse_quic_symbol("HANDSHAKE(?,?)[ACK,CRYPTO]")
        st = parse_quic_symbol("SHORT(?,?)[ACK,STREAM]")
        for word in [(ch,), (ch, hc), (ch, hc, st, st), (ch, ch), (st, ch, hc)]:
            assert sul.query(word) == model.run(word)

    def test_mvfst_learning_aborts(self):
        with pytest.raises(NondeterminismError):
            learn_quic("mvfst")


class TestOracleTableGrowth:
    def test_learning_populates_oracle_table(self):
        experiment = learn_tcp_handshake()
        table = experiment.prognosis.sul.oracle_table
        assert len(table) > 10
        assert all(len(entry.abstract) == len(entry.steps) for entry in table)

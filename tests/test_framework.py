"""Tests for the Prognosis facade."""

import pytest

from repro.adapter.mealy_sul import MealySUL
from repro.analysis.equivalence import equivalent
from repro.framework import Prognosis
from repro.learn.nondeterminism import NondeterminismPolicy


class TestConstruction:
    def test_default_pipeline(self, toy_machine):
        prognosis = Prognosis(MealySUL(toy_machine))
        assert prognosis.cache_oracle is not None
        assert prognosis.majority_oracle is None

    def test_without_cache(self, toy_machine):
        prognosis = Prognosis(MealySUL(toy_machine), use_cache=False)
        assert prognosis.cache_oracle is None

    def test_with_nondeterminism_policy(self, toy_machine):
        prognosis = Prognosis(
            MealySUL(toy_machine),
            nondeterminism_policy=NondeterminismPolicy(min_repeats=2),
        )
        assert prognosis.majority_oracle is not None

    @pytest.mark.parametrize("learner", ["ttt", "lstar"])
    @pytest.mark.parametrize("equivalence", ["wmethod", "random", "random+wmethod"])
    def test_all_configurations_learn(self, toy_machine, learner, equivalence):
        prognosis = Prognosis(
            MealySUL(toy_machine), learner=learner, equivalence=equivalence
        )
        report = prognosis.learn()
        assert equivalent(report.model, toy_machine)


class TestReporting:
    def test_report_fields(self, toy_machine):
        prognosis = Prognosis(MealySUL(toy_machine))
        report = prognosis.learn()
        assert report.num_states == 3
        assert report.num_transitions == 6
        assert report.sul_queries > 0
        assert report.sul_resets > 0
        assert "states" in report.summary()

    def test_cache_hit_rate_reported(self, toy_machine):
        prognosis = Prognosis(MealySUL(toy_machine))
        report = prognosis.learn()
        assert 0.0 <= report.cache_hit_rate <= 1.0


class TestAnalysisHelpers:
    def test_check_property(self, toy_machine):
        prognosis = Prognosis(MealySUL(toy_machine))
        report = prognosis.learn()
        violation = prognosis.check(report.model, "G (in ~ SYN -> out != X)", depth=3)
        assert violation is None  # no output is literally "X"

    def test_reduction(self, toy_machine):
        prognosis = Prognosis(MealySUL(toy_machine))
        report = prognosis.learn()
        reduction = prognosis.reduction(report.model)
        assert reduction.total_traces > reduction.model_traces

    def test_compare(self, toy_machine, redundant_machine):
        diff = Prognosis.compare(toy_machine, redundant_machine)
        assert diff.equivalent

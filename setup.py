"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so pip's PEP 660
editable-install path cannot build an editable wheel.  Providing setup.py
lets ``pip install -e .`` fall back to ``setup.py develop``, which works
without wheel.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
